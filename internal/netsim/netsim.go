// Package netsim simulates the network environments of the paper's
// evaluation — Fast Ethernet LAN, 1997 wide-area Internet, and a cable-
// modem home link — and models the execution costs of the 1997 JVM the
// paper's prototype ran on. Together these let the reproduction run
// multi-site experiments on one machine while preserving the structural
// properties the paper's results depend on: propagation delay, sender
// uplink serialization (so disseminating to k sites scales with k), packet
// loss, and the interpreted-versus-kernel cost asymmetry between Mocha's
// network library and TCP.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// NodeID identifies a simulated host. The transport layer maps Mocha site
// IDs onto node IDs one-to-one.
type NodeID uint32

// Receiver consumes packets delivered to a node.
type Receiver func(from NodeID, pkt []byte)

// Config parameterizes a simulated network.
type Config struct {
	// Profile is the default link profile between every pair of nodes.
	Profile Profile
	// Seed makes loss and jitter deterministic. Each node derives its own
	// RNG from the seed, so one sender's drop sequence does not depend on
	// scheduling of others.
	Seed int64
}

// Stats counts network-wide packet outcomes.
type Stats struct {
	Sent      int64
	Delivered int64
	Dropped   int64 // random loss
	Blackhole int64 // partitioned, killed, or unknown destination
	Bytes     int64
}

// Network is a simulated set of hosts with point-to-point links.
type Network struct {
	cfg   Config
	clock Clock

	mu        sync.Mutex
	nodes     map[NodeID]*Node
	overrides map[linkKey]Profile
	cut       map[linkKey]bool
	// burst tracks, per directed link, how many more packets the active
	// correlated-loss burst will drop (see Profile.BurstLoss).
	burst  map[linkKey]int
	stats  Stats
	closed bool
}

type linkKey struct{ from, to NodeID }

// New creates a simulated network.
func New(cfg Config) *Network {
	return &Network{
		cfg:       cfg,
		nodes:     make(map[NodeID]*Node),
		overrides: make(map[linkKey]Profile),
		cut:       make(map[linkKey]bool),
		burst:     make(map[linkKey]int),
	}
}

// Profile returns the network's default link profile.
func (n *Network) Profile() Profile { return n.cfg.Profile }

// Clock returns the network's shared logical clock, which history recorders
// use to stamp events onto the run's total order.
func (n *Network) Clock() *Clock { return &n.clock }

// ErrNodeExists is returned when adding a duplicate node ID.
var ErrNodeExists = errors.New("netsim: node already exists")

// AddNode registers a host. Packets are discarded until SetReceiver is
// called on the returned node.
func (n *Network) AddNode(id NodeID) (*Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[id]; ok {
		return nil, fmt.Errorf("%w: %d", ErrNodeExists, id)
	}
	node := &Node{
		id:  id,
		net: n,
		rng: rand.New(rand.NewSource(n.cfg.Seed ^ int64(uint64(id)*0x9E3779B97F4A7C15>>1))),
	}
	n.nodes[id] = node
	return node, nil
}

// Node looks up a host by ID, returning nil if absent.
func (n *Network) Node(id NodeID) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.nodes[id]
}

// SetLinkProfile overrides the profile for packets from one node to
// another (one direction), enabling heterogeneous topologies such as a
// cable-modem home site in an otherwise LAN cluster.
func (n *Network) SetLinkProfile(from, to NodeID, p Profile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.overrides[linkKey{from, to}] = p
}

// Partition cuts or restores both directions between two nodes. Packets on
// a cut link vanish, exactly like a wide-area routing failure.
func (n *Network) Partition(a, b NodeID, cut bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[linkKey{a, b}] = cut
	n.cut[linkKey{b, a}] = cut
}

// PartitionOneWay cuts or restores a single direction between two nodes:
// packets from `from` to `to` vanish while the reverse path keeps working.
// Asymmetric routing failures are common on the real wide-area Internet
// (a broken BGP path in one direction) and exercise protocol states a
// symmetric cut cannot: acks that arrive for requests that never did, and
// heartbeats that succeed one way while the reply path is dark.
func (n *Network) PartitionOneWay(from, to NodeID, cut bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[linkKey{from, to}] = cut
}

// Stats returns a snapshot of packet counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Close tears the network down; in-flight packets are discarded when their
// timers fire.
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
}

// route decides a packet's fate and timing under the lock, returning the
// destination node (nil if the packet vanishes) and the total delay.
func (n *Network) route(from, to NodeID, size int, jitterRoll, lossRoll float64) (*Node, time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.routeLocked(from, to, size, jitterRoll, lossRoll, time.Now())
}

// routeLocked is route's body, factored out so SendBatch can settle a whole
// batch's fates under a single acquisition of the network lock — the lock
// every packet in the simulation crosses, and therefore the first thing a
// high-rate load run contends on. Caller holds n.mu.
func (n *Network) routeLocked(from, to NodeID, size int, jitterRoll, lossRoll float64, now time.Time) (*Node, time.Duration) {
	n.stats.Sent++
	n.stats.Bytes += int64(size)
	if n.closed {
		n.stats.Blackhole++
		return nil, 0
	}
	dst, ok := n.nodes[to]
	if !ok || dst.isDead() || n.cut[linkKey{from, to}] {
		n.stats.Blackhole++
		return nil, 0
	}
	p := n.cfg.Profile
	if o, ok := n.overrides[linkKey{from, to}]; ok {
		p = o
	}
	lk := linkKey{from, to}
	if rem := n.burst[lk]; rem > 0 {
		// An active correlated burst swallows packets regardless of the
		// per-packet roll, modelling back-to-back congestion losses.
		n.burst[lk] = rem - 1
		n.stats.Dropped++
		return nil, 0
	}
	if p.Loss > 0 && lossRoll < p.Loss {
		n.stats.Dropped++
		return nil, 0
	}
	if p.BurstLoss > 0 && lossRoll < p.Loss+p.BurstLoss {
		// Start a burst: this packet and the next BurstLen-1 on the link
		// all drop. Reusing the roll already drawn keeps every node's RNG
		// sequence identical to a burst-free run with the same seed, so
		// old schedules replay unchanged.
		if p.BurstLen > 1 {
			n.burst[lk] = p.BurstLen - 1
		}
		n.stats.Dropped++
		return nil, 0
	}
	// Jitter resolves against the link's own profile: the sender draws a
	// uniform roll before routing (so its RNG sequence is scheduling-
	// independent), and an overridden link — a wobbly backbone hop in an
	// otherwise crisp geography — gets its own jitter range here.
	var jitter time.Duration
	if p.Jitter > 0 {
		jitter = time.Duration(jitterRoll * float64(p.Jitter))
	}

	src := n.nodes[from]
	depart := now
	if src != nil {
		// Uplink queueing: a node's packets serialize on its own link, so
		// a burst to k destinations takes k serialization times, which is
		// what makes dissemination cost scale with the number of sites.
		if src.uplinkFree.After(now) {
			depart = src.uplinkFree
		}
		src.uplinkFree = depart.Add(p.serialize(size))
	}
	arrive := depart.Add(p.serialize(size)).Add(p.PropDelay).Add(jitter)
	return dst, arrive.Sub(now)
}

// deliver hands the packet to the destination's receiver and returns the
// pooled delivery copy. Receivers must not retain the packet after the
// callback returns (see SetReceiver).
func (n *Network) deliver(dst *Node, from NodeID, bp *[]byte) {
	dst.mu.Lock()
	recv := dst.recv
	dead := dst.dead
	dst.mu.Unlock()
	if !dead && recv != nil {
		n.mu.Lock()
		n.stats.Delivered++
		n.mu.Unlock()
		n.clock.Tick()
		recv(from, *bp)
	}
	PutBuf(bp)
}

// Node is one simulated host.
type Node struct {
	id  NodeID
	net *Network

	mu   sync.Mutex
	recv Receiver
	dead bool
	// rng drives this node's loss and jitter decisions.
	rng *rand.Rand
	// uplinkFree is when this node's uplink finishes clocking out the last
	// queued packet. Guarded by net.mu, not node.mu, because routing reads
	// and writes it while holding the network lock.
	uplinkFree time.Time
}

// ID returns the node's identifier.
func (nd *Node) ID() NodeID { return nd.id }

// SetReceiver installs the packet handler. The handler runs on delivery
// timer goroutines and must not block for long. The packet buffer is
// recycled when the handler returns: handlers must copy any bytes they
// retain.
func (nd *Node) SetReceiver(r Receiver) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	nd.recv = r
}

// Kill silences the node: everything addressed to it disappears,
// modelling the fail-stop site failures of Section 4 (a remote machine
// reboot or an owner terminating the site manager). Revive undoes it —
// until then the silence is absolute.
func (nd *Node) Kill() {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	nd.dead = true
}

// Revive brings a killed node back: the machine rebooted at the same
// address. Packets dropped while it was dead stay dropped; the receiver
// installed before the kill keeps serving unless replaced, so callers
// restarting a process on the node should SetReceiver first.
func (nd *Node) Revive() {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	nd.dead = false
}

// Alive reports whether the node has not been killed.
func (nd *Node) Alive() bool { return !nd.isDead() }

func (nd *Node) isDead() bool {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.dead
}

// Send transmits a packet. The call returns immediately; delivery happens
// after the simulated serialization, propagation, and jitter delays, or
// never if the packet is lost, the link is cut, or the destination is
// dead — the sender cannot tell, exactly as with UDP.
func (nd *Node) Send(to NodeID, pkt []byte) {
	if nd.isDead() {
		return
	}
	nd.mu.Lock()
	jroll := nd.rng.Float64()
	roll := nd.rng.Float64()
	nd.mu.Unlock()

	dst, delay := nd.net.route(nd.id, to, len(pkt), jroll, roll)
	if dst == nil {
		return
	}
	// Copy the payload into a pooled buffer so the caller may reuse its own;
	// deliver recycles the copy once the receiver returns.
	bp := GetBuf(len(pkt))
	copy(*bp, pkt)
	if delay <= 0 {
		nd.net.deliver(dst, nd.id, bp)
		return
	}
	go func() {
		SleepPrecise(delay)
		nd.net.deliver(dst, nd.id, bp)
	}()
}

// SendBatch transmits several packets to one destination with the same
// semantics as calling Send for each, but settles the whole batch's fates
// (loss, uplink serialization, arrival times) under a single acquisition of
// the network-wide routing lock and delivers all delayed packets from a
// single goroutine. At high offered load this is where batching pays in the
// simulation: the routing lock is the one structure every packet in the
// cluster crosses.
func (nd *Node) SendBatch(to NodeID, pkts [][]byte) {
	if len(pkts) == 0 || nd.isDead() {
		return
	}
	type hop struct {
		bp    *[]byte
		delay time.Duration
	}
	hops := make([]hop, 0, len(pkts))

	nd.mu.Lock()
	jrolls := make([]float64, len(pkts))
	rolls := make([]float64, len(pkts))
	for i := range pkts {
		jrolls[i] = nd.rng.Float64()
		rolls[i] = nd.rng.Float64()
	}
	nd.mu.Unlock()

	var dst *Node
	nd.net.mu.Lock()
	now := time.Now()
	for i, pkt := range pkts {
		d, delay := nd.net.routeLocked(nd.id, to, len(pkt), jrolls[i], rolls[i], now)
		if d == nil {
			continue
		}
		dst = d
		bp := GetBuf(len(pkt))
		copy(*bp, pkt)
		hops = append(hops, hop{bp: bp, delay: delay})
	}
	nd.net.mu.Unlock()
	if len(hops) == 0 {
		return
	}

	// Deliver the synchronous prefix inline (the zero-delay profile used by
	// CPU-bound load runs), then hand whatever needs waiting to one timer
	// goroutine that walks the batch in arrival order.
	rest := hops[:0]
	for _, h := range hops {
		if h.delay <= 0 {
			nd.net.deliver(dst, nd.id, h.bp)
		} else {
			rest = append(rest, h)
		}
	}
	if len(rest) == 0 {
		return
	}
	delayed := make([]hop, len(rest))
	copy(delayed, rest)
	go func() {
		sort.Slice(delayed, func(i, j int) bool { return delayed[i].delay < delayed[j].delay })
		var slept time.Duration
		for _, h := range delayed {
			if d := h.delay - slept; d > 0 {
				SleepPrecise(d)
				slept = h.delay
			}
			nd.net.deliver(dst, nd.id, h.bp)
		}
	}()
}
