package netsim

import "sync"

// pktPool recycles packet-sized buffers across the whole stack: mnet's
// encoded fragments and acks, the transport bindings' tagged frames, and
// netsim's in-flight delivery copies all draw from it. One shared pool
// means a packet buffer freed at any layer is immediately reusable at any
// other, and concurrent senders stop contending in the allocator. It holds
// pointers to slices (the usual sync.Pool idiom avoiding interface header
// allocations); buffers grow to the largest packet they carried.
var pktPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// GetBuf returns a pooled buffer sliced to length n with undefined
// contents; the caller must overwrite every byte it emits.
func GetBuf(n int) *[]byte {
	bp := pktPool.Get().(*[]byte)
	if cap(*bp) < n {
		b := make([]byte, n)
		*bp = b
	}
	*bp = (*bp)[:n]
	return bp
}

// PutBuf returns a buffer to the pool. The buffer must no longer be
// referenced by any pending or in-flight use.
func PutBuf(bp *[]byte) { pktPool.Put(bp) }
