package netsim

import (
	"sync"
	"sync/atomic"
)

// pktPool recycles packet-sized buffers across the whole stack: mnet's
// encoded fragments and acks, the transport bindings' tagged frames, and
// netsim's in-flight delivery copies all draw from it. One shared pool
// means a packet buffer freed at any layer is immediately reusable at any
// other, and concurrent senders stop contending in the allocator. It holds
// pointers to slices (the usual sync.Pool idiom avoiding interface header
// allocations); buffers grow to the largest packet they carried.
var pktPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// poolDebug arms double-free detection. Off by default: the hot path then
// pays one atomic load per Get/Put. When on, poolState tracks whether each
// buffer pointer is currently pooled so PutBuf can panic on a double free
// — returning the same buffer twice would hand it to two independent
// owners and corrupt packets in flight, a bug class far cheaper to catch
// at the Put than to debug from a garbled frame.
var (
	poolDebug atomic.Bool
	poolState sync.Map // *[]byte -> bool (true = currently pooled)
)

// SetPoolDebug toggles double-free detection on the packet pool. Intended
// for tests and debug builds.
func SetPoolDebug(on bool) { poolDebug.Store(on) }

// GetBuf returns a pooled buffer sliced to length n with undefined
// contents; the caller must overwrite every byte it emits.
func GetBuf(n int) *[]byte {
	bp := pktPool.Get().(*[]byte)
	if poolDebug.Load() {
		poolState.Store(bp, false)
	}
	if cap(*bp) < n {
		b := make([]byte, n)
		*bp = b
	}
	*bp = (*bp)[:n]
	return bp
}

// PutBuf returns a buffer to the pool. The buffer must no longer be
// referenced by any pending or in-flight use. With SetPoolDebug(true) a
// second Put of the same buffer panics instead of silently double-pooling.
func PutBuf(bp *[]byte) {
	if poolDebug.Load() {
		if prev, loaded := poolState.Swap(bp, true); loaded && prev.(bool) {
			panic("netsim: PutBuf double free: buffer already pooled")
		}
	}
	pktPool.Put(bp)
}
