package netsim

import (
	"sync"
	"testing"
	"time"
)

func TestProfileSerialize(t *testing.T) {
	tests := []struct {
		name string
		p    Profile
		n    int
		want time.Duration
	}{
		{name: "infinite bandwidth", p: Profile{}, n: 1 << 20, want: 0},
		{name: "1KB at 1MB/s", p: Profile{BytesPerSecond: 1_000_000}, n: 1000, want: time.Millisecond},
		{name: "header overhead", p: Profile{BytesPerSecond: 1000, HeaderBytes: 28}, n: 72, want: 100 * time.Millisecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.serialize(tt.n); got != tt.want {
				t.Fatalf("serialize(%d) = %v, want %v", tt.n, got, tt.want)
			}
		})
	}
}

func TestProfileScaled(t *testing.T) {
	p := WANInternet97()
	s := p.Scaled(0.1)
	if s.PropDelay != p.PropDelay/10 {
		t.Errorf("PropDelay = %v, want %v", s.PropDelay, p.PropDelay/10)
	}
	if s.BytesPerSecond != p.BytesPerSecond*10 {
		t.Errorf("BytesPerSecond = %d, want %d", s.BytesPerSecond, p.BytesPerSecond*10)
	}
	if got := p.Scaled(1); got != p {
		t.Errorf("Scaled(1) changed the profile")
	}
}

func TestCostModelArithmetic(t *testing.T) {
	c := CostModel{
		MarshalPerObject:  time.Millisecond,
		MarshalPerByte:    time.Microsecond,
		FragmentPerPacket: 2 * time.Millisecond,
		FragmentPerByte:   3 * time.Microsecond,
		StreamPerMessage:  time.Millisecond,
		StreamPerByte:     time.Nanosecond,
	}
	if got, want := c.MarshalCost(1000), 2*time.Millisecond; got != want {
		t.Errorf("MarshalCost = %v, want %v", got, want)
	}
	if got, want := c.FragmentCost(1000), 5*time.Millisecond; got != want {
		t.Errorf("FragmentCost = %v, want %v", got, want)
	}
	if got, want := c.StreamWriteCost(1000), time.Millisecond+1000*time.Nanosecond; got != want {
		t.Errorf("StreamWriteCost = %v, want %v", got, want)
	}
	if got := c.Scaled(0.5).FragmentCost(1000); got != 2500*time.Microsecond {
		t.Errorf("scaled FragmentCost = %v, want 2.5ms", got)
	}
}

func TestJDK1CalibrationAnchors(t *testing.T) {
	// The JDK1 model must keep the two relationships the paper's protocol
	// crossover depends on: user-level fragmentation is far more expensive
	// per byte than the kernel TCP path, and stream setup/teardown dwarfs
	// a single small-message fragmentation cost.
	c := JDK1()
	if c.FragmentPerByte < 100*c.StreamPerByte {
		t.Errorf("fragmentation per-byte (%v) must dominate stream per-byte (%v)", c.FragmentPerByte, c.StreamPerByte)
	}
	if c.StreamSetup+c.StreamTeardown < 4*c.FragmentCost(64) {
		t.Errorf("stream setup+teardown (%v) must dominate small-message fragmentation (%v)",
			c.StreamSetup+c.StreamTeardown, c.FragmentCost(64))
	}
	fm := c.FastMarshal()
	if fm.MarshalCost(4096) >= c.MarshalCost(4096)/10 {
		t.Errorf("fast marshal (%v) should be at least 10x cheaper than JDK1 (%v)",
			fm.MarshalCost(4096), c.MarshalCost(4096))
	}
}

// newTestNet builds a network with n nodes whose packets land in per-node
// channels.
func newTestNet(t *testing.T, cfg Config, n int) (*Network, []chan []byte) {
	t.Helper()
	net := New(cfg)
	chans := make([]chan []byte, n)
	for i := 0; i < n; i++ {
		node, err := net.AddNode(NodeID(i + 1))
		if err != nil {
			t.Fatalf("AddNode: %v", err)
		}
		ch := make(chan []byte, 1024)
		// The delivery buffer is recycled when the receiver returns; copy
		// before parking the packet on the channel.
		node.SetReceiver(func(_ NodeID, pkt []byte) { ch <- append([]byte(nil), pkt...) })
		chans[i] = ch
	}
	t.Cleanup(net.Close)
	return net, chans
}

func recvWithin(t *testing.T, ch chan []byte, d time.Duration) []byte {
	t.Helper()
	select {
	case pkt := <-ch:
		return pkt
	case <-time.After(d):
		t.Fatal("timed out waiting for packet")
		return nil
	}
}

func TestDelivery(t *testing.T) {
	net, chans := newTestNet(t, Config{Profile: Perfect()}, 2)
	net.Node(1).Send(2, []byte("hello"))
	got := recvWithin(t, chans[1], time.Second)
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	st := net.Stats()
	if st.Sent != 1 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	net, chans := newTestNet(t, Config{Profile: Perfect()}, 2)
	buf := []byte("aaaa")
	net.Node(1).Send(2, buf)
	buf[0] = 'z'
	got := recvWithin(t, chans[1], time.Second)
	if string(got) != "aaaa" {
		t.Fatalf("payload aliased sender buffer: %q", got)
	}
}

func TestPropagationDelay(t *testing.T) {
	p := Profile{PropDelay: 30 * time.Millisecond}
	net, chans := newTestNet(t, Config{Profile: p}, 2)
	start := time.Now()
	net.Node(1).Send(2, []byte("x"))
	recvWithin(t, chans[1], time.Second)
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~30ms", elapsed)
	}
}

func TestUplinkQueueing(t *testing.T) {
	// 10 KB/s uplink: five 100-byte packets take >= ~50ms to clock out
	// even to different destinations.
	p := Profile{BytesPerSecond: 10_000}
	net := New(Config{Profile: p})
	src, err := net.AddNode(1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(5)
	for i := 0; i < 5; i++ {
		node, err := net.AddNode(NodeID(i + 2))
		if err != nil {
			t.Fatal(err)
		}
		node.SetReceiver(func(NodeID, []byte) { wg.Done() })
	}
	start := time.Now()
	for i := 0; i < 5; i++ {
		src.Send(NodeID(i+2), make([]byte, 100))
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("packets never delivered")
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("five queued packets delivered in %v, want >= ~50ms (uplink serialization)", elapsed)
	}
}

func TestPartition(t *testing.T) {
	net, chans := newTestNet(t, Config{Profile: Perfect()}, 2)
	net.Partition(1, 2, true)
	net.Node(1).Send(2, []byte("lost"))
	select {
	case <-chans[1]:
		t.Fatal("packet crossed a partition")
	case <-time.After(50 * time.Millisecond):
	}
	if st := net.Stats(); st.Blackhole != 1 {
		t.Fatalf("blackhole count = %d, want 1", st.Blackhole)
	}
	net.Partition(1, 2, false)
	net.Node(1).Send(2, []byte("through"))
	if got := recvWithin(t, chans[1], time.Second); string(got) != "through" {
		t.Fatalf("got %q after heal", got)
	}
}

func TestPartitionOneWay(t *testing.T) {
	net, chans := newTestNet(t, Config{Profile: Perfect()}, 2)
	net.PartitionOneWay(1, 2, true)
	net.Node(1).Send(2, []byte("lost"))
	select {
	case <-chans[1]:
		t.Fatal("packet crossed a one-way cut")
	case <-time.After(50 * time.Millisecond):
	}
	// The reverse direction keeps working: that asymmetry is the point.
	net.Node(2).Send(1, []byte("back"))
	if got := recvWithin(t, chans[0], time.Second); string(got) != "back" {
		t.Fatalf("reverse direction got %q", got)
	}
	net.PartitionOneWay(1, 2, false)
	net.Node(1).Send(2, []byte("healed"))
	if got := recvWithin(t, chans[1], time.Second); string(got) != "healed" {
		t.Fatalf("got %q after heal", got)
	}
}

func TestBurstLossDropsConsecutivePackets(t *testing.T) {
	// BurstLoss=1 means the very first packet starts a burst; with
	// BurstLen=4 the first four packets vanish and the fifth starts a new
	// burst, so nothing is ever delivered — but the drop accounting shows
	// the burst countdown (not blackholes or independent loss).
	net := New(Config{Profile: Perfect().Bursty(1, 4), Seed: 7})
	a, _ := net.AddNode(1)
	b, _ := net.AddNode(2)
	var mu sync.Mutex
	delivered := 0
	b.SetReceiver(func(NodeID, []byte) { mu.Lock(); delivered++; mu.Unlock() })
	for i := 0; i < 8; i++ {
		a.Send(2, []byte{byte(i)})
	}
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if delivered != 0 {
		t.Fatalf("delivered %d packets through a saturating burst", delivered)
	}
	if st := net.Stats(); st.Dropped != 8 {
		t.Fatalf("dropped = %d, want 8", st.Dropped)
	}
}

func TestBurstLossIsPerLink(t *testing.T) {
	// A burst on 1→2 must not swallow packets on 1→3: the countdown is a
	// property of the directed link, not the sender.
	net := New(Config{Profile: Perfect()})
	a, _ := net.AddNode(1)
	var mu sync.Mutex
	got := map[NodeID]int{}
	for _, id := range []NodeID{2, 3} {
		id := id
		n, _ := net.AddNode(id)
		n.SetReceiver(func(NodeID, []byte) { mu.Lock(); got[id]++; mu.Unlock() })
	}
	net.SetLinkProfile(1, 2, Perfect().Bursty(1, 100))
	for i := 0; i < 5; i++ {
		a.Send(2, []byte{byte(i)})
		a.Send(3, []byte{byte(i)})
	}
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if got[2] != 0 {
		t.Fatalf("bursty link delivered %d packets", got[2])
	}
	if got[3] != 5 {
		t.Fatalf("clean link delivered %d/5 packets", got[3])
	}
}

func TestBurstLossZeroPreservesIndependentLoss(t *testing.T) {
	// With BurstLoss left at zero, the loss decision consumes exactly the
	// same roll as before the burst machinery existed, so a seeded run's
	// delivery pattern is byte-for-byte identical to the old behavior.
	run := func(p Profile) (delivered int64) {
		net := New(Config{Profile: p, Seed: 42})
		a, _ := net.AddNode(1)
		b, _ := net.AddNode(2)
		var mu sync.Mutex
		b.SetReceiver(func(NodeID, []byte) { mu.Lock(); delivered++; mu.Unlock() })
		for i := 0; i < 200; i++ {
			a.Send(2, []byte{byte(i)})
		}
		time.Sleep(50 * time.Millisecond)
		net.Close()
		mu.Lock()
		defer mu.Unlock()
		return delivered
	}
	plain := run(Perfect().Lossy(0.5))
	withBurstField := run(Profile{Loss: 0.5, BurstLen: 4}) // BurstLoss = 0
	if plain != withBurstField {
		t.Fatalf("BurstLen without BurstLoss changed delivery: %d vs %d", plain, withBurstField)
	}
}

func TestKill(t *testing.T) {
	net, chans := newTestNet(t, Config{Profile: Perfect()}, 2)
	net.Node(2).Kill()
	if net.Node(2).Alive() {
		t.Fatal("killed node reports alive")
	}
	net.Node(1).Send(2, []byte("x"))
	select {
	case <-chans[1]:
		t.Fatal("dead node received a packet")
	case <-time.After(50 * time.Millisecond):
	}
	// A dead node's sends also vanish.
	net.Node(2).Send(1, []byte("x"))
	select {
	case <-chans[0]:
		t.Fatal("dead node transmitted a packet")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestSendBatchDelivers(t *testing.T) {
	net, chans := newTestNet(t, Config{Profile: Perfect()}, 2)
	pkts := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	net.Node(1).SendBatch(2, pkts)
	for _, want := range []string{"a", "bb", "ccc"} {
		if got := recvWithin(t, chans[1], time.Second); string(got) != want {
			t.Fatalf("got %q, want %q", got, want)
		}
	}
	st := net.Stats()
	if st.Sent != 3 || st.Delivered != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSendBatchDelayedKeepsOrder(t *testing.T) {
	p := Profile{PropDelay: 10 * time.Millisecond}
	net, chans := newTestNet(t, Config{Profile: p}, 2)
	pkts := [][]byte{[]byte("1"), []byte("2"), []byte("3"), []byte("4")}
	start := time.Now()
	net.Node(1).SendBatch(2, pkts)
	for _, want := range []string{"1", "2", "3", "4"} {
		if got := recvWithin(t, chans[1], time.Second); string(got) != want {
			t.Fatalf("got %q, want %q", got, want)
		}
	}
	if elapsed := time.Since(start); elapsed < 8*time.Millisecond {
		t.Fatalf("batch arrived in %v, want >= ~10ms propagation", elapsed)
	}
}

func TestSendBatchLoss(t *testing.T) {
	net := New(Config{Profile: Perfect().Lossy(0.5), Seed: 42})
	a, _ := net.AddNode(1)
	b, _ := net.AddNode(2)
	var mu sync.Mutex
	delivered := 0
	b.SetReceiver(func(NodeID, []byte) { mu.Lock(); delivered++; mu.Unlock() })
	pkts := make([][]byte, 200)
	for i := range pkts {
		pkts[i] = []byte{byte(i)}
	}
	a.SendBatch(2, pkts)
	time.Sleep(50 * time.Millisecond)
	net.Close()
	mu.Lock()
	defer mu.Unlock()
	if delivered == 0 || delivered == 200 {
		t.Fatalf("with 50%% loss expected partial delivery, got %d/200", delivered)
	}
	st := net.Stats()
	if st.Sent != 200 || st.Delivered != int64(delivered) || st.Dropped != 200-int64(delivered) {
		t.Fatalf("stats = %+v, delivered = %d", st, delivered)
	}
}

func TestLossIsDeterministicPerSeed(t *testing.T) {
	run := func() (delivered int64) {
		net := New(Config{Profile: Perfect().Lossy(0.5), Seed: 42})
		a, _ := net.AddNode(1)
		b, _ := net.AddNode(2)
		var mu sync.Mutex
		b.SetReceiver(func(NodeID, []byte) { mu.Lock(); delivered++; mu.Unlock() })
		for i := 0; i < 200; i++ {
			a.Send(2, []byte{byte(i)})
		}
		time.Sleep(50 * time.Millisecond)
		net.Close()
		mu.Lock()
		defer mu.Unlock()
		return delivered
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("loss pattern not deterministic: %d vs %d", first, second)
	}
	if first == 0 || first == 200 {
		t.Fatalf("with 50%% loss expected partial delivery, got %d/200", first)
	}
}

func TestLinkOverride(t *testing.T) {
	net, chans := newTestNet(t, Config{Profile: Perfect()}, 2)
	net.SetLinkProfile(1, 2, Profile{PropDelay: 40 * time.Millisecond})
	start := time.Now()
	net.Node(1).Send(2, []byte("x"))
	recvWithin(t, chans[1], time.Second)
	if time.Since(start) < 35*time.Millisecond {
		t.Fatal("link override not applied")
	}
	// Reverse direction still uses the default instantaneous profile.
	start = time.Now()
	net.Node(2).Send(1, []byte("y"))
	recvWithin(t, chans[0], time.Second)
	if time.Since(start) > 20*time.Millisecond {
		t.Fatal("override leaked into the reverse direction")
	}
}

func TestDuplicateNode(t *testing.T) {
	net := New(Config{Profile: Perfect()})
	if _, err := net.AddNode(1); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddNode(1); err == nil {
		t.Fatal("duplicate AddNode succeeded")
	}
}

func TestSendToUnknownNode(t *testing.T) {
	net := New(Config{Profile: Perfect()})
	a, _ := net.AddNode(1)
	a.Send(99, []byte("x")) // must not panic
	if st := net.Stats(); st.Blackhole != 1 {
		t.Fatalf("blackhole = %d, want 1", st.Blackhole)
	}
}

func TestClosedNetworkDropsPackets(t *testing.T) {
	net, chans := newTestNet(t, Config{Profile: Perfect()}, 2)
	net.Close()
	net.Node(1).Send(2, []byte("x"))
	select {
	case <-chans[1]:
		t.Fatal("closed network delivered a packet")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestSleepPreciseAccuracy(t *testing.T) {
	// The kernel rounds plain sleeps up to ~1ms; SleepPrecise must hit
	// sub-millisecond targets closely enough for the calibrated cost
	// model. Allow generous slack for CI noise.
	for _, d := range []time.Duration{150 * time.Microsecond, 950 * time.Microsecond, 2500 * time.Microsecond} {
		const rounds = 5
		// Wall-clock accuracy depends on machine load (test packages run
		// in parallel), so accept the best of a few attempts: the
		// property under test is that SleepPrecise is not quantized to
		// the kernel's ~1ms sleep granularity, not that the scheduler is
		// idle.
		best := time.Duration(1 << 62)
		for attempt := 0; attempt < 5 && best > d+600*time.Microsecond; attempt++ {
			start := time.Now()
			for i := 0; i < rounds; i++ {
				SleepPrecise(d)
			}
			avg := time.Since(start) / rounds
			if avg < d {
				t.Fatalf("SleepPrecise(%v) returned early: avg %v", d, avg)
			}
			if avg < best {
				best = avg
			}
		}
		if best > d+600*time.Microsecond {
			t.Fatalf("SleepPrecise(%v) overshoots: best avg %v", d, best)
		}
	}
	SleepPrecise(0)  // must not hang
	SleepPrecise(-1) // must not hang
}
