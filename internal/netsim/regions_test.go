package netsim

import (
	"testing"
	"time"
)

func TestGeographyRegionAssignment(t *testing.T) {
	g := RegionalWAN(4)
	if r := g.RegionOf(1); r != 0 {
		t.Fatalf("home site region = %d, want 0", r)
	}
	if r := g.RegionOf(5); r != 0 {
		t.Fatalf("site 5 region = %d, want 0 (round-robin)", r)
	}
	if r := g.RegionOf(3); r != 2 {
		t.Fatalf("site 3 region = %d, want 2", r)
	}
	if r := (Geography{Regions: 1}).RegionOf(7); r != 0 {
		t.Fatalf("single-region geography returned region %d", r)
	}
}

func TestGeographyLinkProfiles(t *testing.T) {
	g := RegionalWAN(4)
	// Same region: the cheap local profile.
	if p := g.LinkProfile(1, 5); p.Name != g.Local.Name || p.PropDelay != g.Local.PropDelay {
		t.Fatalf("intra-region profile = %+v", p)
	}
	// Cross-region: backbone stretched by |region distance| steps, and
	// symmetric in the pair.
	p12 := g.LinkProfile(1, 2) // regions 0 -> 1
	if want := g.Backbone.PropDelay + g.Step; p12.PropDelay != want {
		t.Fatalf("1->2 prop = %v, want %v", p12.PropDelay, want)
	}
	p14 := g.LinkProfile(1, 4) // regions 0 -> 3
	if want := g.Backbone.PropDelay + 3*g.Step; p14.PropDelay != want {
		t.Fatalf("1->4 prop = %v, want %v", p14.PropDelay, want)
	}
	if back := g.LinkProfile(4, 1); back.PropDelay != p14.PropDelay {
		t.Fatalf("asymmetric geography: %v vs %v", back.PropDelay, p14.PropDelay)
	}
	// Every region sits at a distinct RTT from region 0, so RTT bucketing
	// can recover the region structure.
	seen := map[time.Duration]bool{}
	for id := NodeID(1); id <= 4; id++ {
		rtt := 2 * g.LinkProfile(1, id).PropDelay
		if seen[rtt] {
			t.Fatalf("duplicate home RTT %v for site %d", rtt, id)
		}
		seen[rtt] = true
	}
}

func TestGeographyScaled(t *testing.T) {
	g := RegionalWAN(3)
	s := g.Scaled(0.5)
	if s.Step != g.Step/2 || s.Backbone.PropDelay != g.Backbone.PropDelay/2 {
		t.Fatalf("Scaled: %+v", s)
	}
	if s.Backbone.BytesPerSecond != 2*g.Backbone.BytesPerSecond {
		t.Fatalf("Scaled bandwidth = %d", s.Backbone.BytesPerSecond)
	}
	if same := g.Scaled(1); same.Step != g.Step {
		t.Fatal("Scaled(1) changed the geography")
	}
}

func TestGeographyApplyShapesDelivery(t *testing.T) {
	g := RegionalWAN(2).Scaled(0.25) // backbone one-way 4.5ms, local 75µs
	net, chans := newTestNet(t, Config{Profile: Perfect()}, 4)
	g.Apply(net, []NodeID{1, 2, 3, 4})

	// 1 and 3 share region 0: near-instant delivery.
	start := time.Now()
	net.Node(1).Send(3, []byte("near"))
	recvWithin(t, chans[2], time.Second)
	if e := time.Since(start); e > 3*time.Millisecond {
		t.Fatalf("intra-region delivery took %v", e)
	}
	// 1 -> 2 crosses the backbone.
	start = time.Now()
	net.Node(1).Send(2, []byte("far"))
	recvWithin(t, chans[1], time.Second)
	if e := time.Since(start); e < 4*time.Millisecond {
		t.Fatalf("inter-region delivery took only %v", e)
	}
}

func TestAsymmetricLinkOneWayDelay(t *testing.T) {
	// Forward and reverse directions of the same pair carry independent
	// profiles; each direction's one-way delay must follow its own.
	net, chans := newTestNet(t, Config{Profile: Perfect()}, 2)
	net.SetLinkProfile(1, 2, Profile{PropDelay: 40 * time.Millisecond})
	net.SetLinkProfile(2, 1, Profile{PropDelay: 5 * time.Millisecond})

	start := time.Now()
	net.Node(1).Send(2, []byte("slow direction"))
	recvWithin(t, chans[1], time.Second)
	forward := time.Since(start)

	start = time.Now()
	net.Node(2).Send(1, []byte("fast direction"))
	recvWithin(t, chans[0], time.Second)
	reverse := time.Since(start)

	if forward < 35*time.Millisecond {
		t.Fatalf("forward one-way delay %v, want ~40ms", forward)
	}
	if reverse < 3*time.Millisecond || reverse > 25*time.Millisecond {
		t.Fatalf("reverse one-way delay %v, want ~5ms", reverse)
	}
	if forward < 2*reverse {
		t.Fatalf("asymmetry not visible: forward %v vs reverse %v", forward, reverse)
	}
}

func TestPutBufDoubleFreePanicsInDebug(t *testing.T) {
	SetPoolDebug(true)
	defer SetPoolDebug(false)

	bp := GetBuf(16)
	PutBuf(bp)
	defer func() {
		if recover() == nil {
			t.Fatal("second PutBuf of the same buffer did not panic")
		}
	}()
	PutBuf(bp)
}

func TestPoolDebugAllowsNormalReuse(t *testing.T) {
	SetPoolDebug(true)
	defer SetPoolDebug(false)

	// Get/Put cycles of the same underlying buffer are legal — only a
	// Put without an intervening Get is a double free.
	for i := 0; i < 8; i++ {
		bp := GetBuf(64)
		(*bp)[0] = byte(i)
		PutBuf(bp)
	}
}
