package netsim

import (
	"os"
	"strconv"
)

// SeedEnv is the environment variable every randomized test reads its base
// seed from, so one exported value reproduces a failing run anywhere.
const SeedEnv = "MOCHA_TEST_SEED"

// SeedFromEnv returns the test seed: MOCHA_TEST_SEED when set and parseable,
// the fixed default otherwise. Randomized tests must log the seed they ran
// with so failures are reproducible.
func SeedFromEnv(def int64) int64 {
	if v := os.Getenv(SeedEnv); v != "" {
		if s, err := strconv.ParseInt(v, 10, 64); err == nil {
			return s
		}
	}
	return def
}

// DeriveSeed mixes a base seed with a salt (splitmix64 finalizer), so one
// run seed deterministically yields independent streams for the network,
// the workload, and the fault schedule.
func DeriveSeed(base int64, salt uint64) int64 {
	z := uint64(base) + 0x9E3779B97F4A7C15*(salt+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
