package netsim

import (
	"runtime"
	"time"
)

// spinTail is how much of a wait is busy-polled rather than slept. The
// host kernel rounds time.Sleep up to roughly a millisecond, which would
// swamp the sub-millisecond costs this package models (a 950 microsecond
// fragmentation charge, a 150 microsecond LAN propagation delay), so
// waits sleep until only spinTail remains and poll the clock for the rest.
const spinTail = 1500 * time.Microsecond

// SleepPrecise waits for d with microsecond-level accuracy.
func SleepPrecise(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	if d > spinTail {
		time.Sleep(d - spinTail)
	}
	for i := 0; time.Now().Before(deadline); i++ {
		if i%64 == 63 {
			runtime.Gosched()
		}
	}
}
