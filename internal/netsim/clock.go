package netsim

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Clock is a shared monotonic tick counter. Every Network owns one, ticked
// on each packet delivery, and history recorders tick it per recorded event,
// so one run's protocol events and network activity share a total order
// that survives into offline checking. The zero value is ready to use.
type Clock struct {
	t atomic.Uint64
}

// Tick advances the clock and returns the new reading.
func (c *Clock) Tick() uint64 { return c.t.Add(1) }

// Now returns the current reading without advancing.
func (c *Clock) Now() uint64 { return c.t.Load() }

// spinTail is how much of a wait is busy-polled rather than slept. The
// host kernel rounds time.Sleep up to roughly a millisecond, which would
// swamp the sub-millisecond costs this package models (a 950 microsecond
// fragmentation charge, a 150 microsecond LAN propagation delay), so
// waits sleep until only spinTail remains and poll the clock for the rest.
const spinTail = 1500 * time.Microsecond

// SleepPrecise waits for d with microsecond-level accuracy.
func SleepPrecise(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	if d > spinTail {
		time.Sleep(d - spinTail)
	}
	for i := 0; time.Now().Before(deadline); i++ {
		if i%64 == 63 {
			runtime.Gosched()
		}
	}
}
