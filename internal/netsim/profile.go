package netsim

import "time"

// Profile describes one network environment: the link characteristics a
// packet experiences between any two sites. The paper evaluates Mocha on
// two SUN ULTRA 1 machines on Fast Ethernet (LAN) and on an ULTRA 1 /
// SPARCstation 20 pair about six miles apart on the 1997 Internet (WAN);
// the standard profiles below are calibrated so the simulated environments
// reproduce the paper's Table 1 lock latencies and the figure shapes.
type Profile struct {
	// Name labels the environment in benchmark output.
	Name string
	// PropDelay is the one-way propagation delay.
	PropDelay time.Duration
	// Jitter is the maximum additional uniformly-distributed one-way delay.
	Jitter time.Duration
	// BytesPerSecond is the link bandwidth used for serialization delay.
	// Zero means infinite bandwidth.
	BytesPerSecond int64
	// Loss is the independent per-packet drop probability in [0,1).
	Loss float64
	// BurstLoss is the per-packet probability of starting a correlated
	// loss burst on the link: the triggering packet and the next
	// BurstLen-1 packets routed over the same directed link all drop.
	// Bursts model congestion-window collapse and route flaps, whose
	// back-to-back losses defeat retransmission strategies that tolerate
	// the same average rate of independent loss.
	BurstLoss float64
	// BurstLen is how many consecutive packets (including the trigger) a
	// burst drops. Values below 2 behave like independent loss.
	BurstLen int
	// HeaderBytes is the per-packet wire overhead (UDP/IP framing) added
	// to the payload when computing serialization delay.
	HeaderBytes int
}

// serialize returns the time the link needs to clock out n payload bytes.
func (p Profile) serialize(n int) time.Duration {
	if p.BytesPerSecond <= 0 {
		return 0
	}
	total := int64(n + p.HeaderBytes)
	return time.Duration(total * int64(time.Second) / p.BytesPerSecond)
}

// Scaled returns a copy of the profile with every delay multiplied by f and
// the bandwidth divided by f. Tests and testing.B benchmarks run scaled
// profiles (f << 1) so suites finish quickly; cmd/benchmocha runs f = 1.
func (p Profile) Scaled(f float64) Profile {
	if f == 1 {
		return p
	}
	q := p
	q.PropDelay = time.Duration(float64(p.PropDelay) * f)
	q.Jitter = time.Duration(float64(p.Jitter) * f)
	if p.BytesPerSecond > 0 {
		q.BytesPerSecond = int64(float64(p.BytesPerSecond) / f)
	}
	return q
}

// LANFastEthernet models the paper's local testbed: two workstations on
// switched Fast Ethernet. Propagation is near-zero; the 5 ms LAN lock
// latency of Table 1 comes almost entirely from the JDK1 execution-cost
// model, as it did on the real 1997 JVM.
func LANFastEthernet() Profile {
	return Profile{
		Name:           "lan-fast-ethernet",
		PropDelay:      150 * time.Microsecond,
		Jitter:         50 * time.Microsecond,
		BytesPerSecond: 100_000_000 / 8, // 100 Mbit/s
		HeaderBytes:    28,
	}
}

// WANInternet97 models the paper's wide-area path: two campuses six miles
// apart on the 1997 Internet. The one-way delay and modest bandwidth are
// calibrated to Table 1's 19 ms lock acquisition and to the serialization-
// dominated large-replica transfers of Figures 12 and 14.
func WANInternet97() Profile {
	return Profile{
		Name:           "wan-internet-1997",
		PropDelay:      7100 * time.Microsecond,
		Jitter:         400 * time.Microsecond,
		BytesPerSecond: 4_000_000 / 8, // 4 Mbit/s
		HeaderBytes:    28,
	}
}

// CableModem models the home-service deployment the paper's conclusion
// describes: a Windows 95 PC on a cable modem talking to a campus
// workstation. Asymmetric bandwidth is approximated by its slower
// direction.
func CableModem() Profile {
	return Profile{
		Name:           "cable-modem-home",
		PropDelay:      12 * time.Millisecond,
		Jitter:         3 * time.Millisecond,
		BytesPerSecond: 1_500_000 / 8, // 1.5 Mbit/s downstream class
		HeaderBytes:    28,
	}
}

// Perfect is an idealized instantaneous, lossless network for unit tests
// that exercise protocol logic rather than timing.
func Perfect() Profile {
	return Profile{Name: "perfect"}
}

// Lossy returns a copy of the profile with the given packet-loss rate, for
// fault-injection tests.
func (p Profile) Lossy(rate float64) Profile {
	q := p
	q.Loss = rate
	q.Name = p.Name + "-lossy"
	return q
}

// Bursty returns a copy of the profile that additionally starts a
// correlated loss burst with probability rate per packet, each burst
// dropping length consecutive packets on the affected directed link.
func (p Profile) Bursty(rate float64, length int) Profile {
	q := p
	q.BurstLoss = rate
	q.BurstLen = length
	q.Name = p.Name + "-bursty"
	return q
}
