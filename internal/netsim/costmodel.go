package netsim

import "time"

// CostModel reproduces the execution-cost asymmetries of the paper's 1997
// platform, which native Go otherwise erases.
//
// The paper attributes its headline protocol results to two such
// asymmetries. First, Mocha's network library performed fragmentation and
// reassembly "at user level running as interpreted byte code" while TCP's
// ran "as native binary code at the kernel level", which is why the hybrid
// protocol overtakes the basic protocol as replicas grow (Figures 11-14).
// Second, JDK 1.1's generic marshaling constructs "utilize dynamic arrays
// and marshal a single byte at a time", which is why marshaling large
// replicas is expensive (Figure 8). The JDK1 model charges calibrated CPU
// time for these activities; Native charges nothing and yields pure-Go
// numbers. Charging is a plain sleep in the calling goroutine, which also
// reproduces the serialization of work within the paper's single daemon
// thread.
type CostModel struct {
	// Name labels the model in benchmark output.
	Name string

	// MarshalPerObject and MarshalPerByte model Java-serialization cost
	// for packing one replica into a byte array (Figure 8).
	MarshalPerObject time.Duration
	MarshalPerByte   time.Duration
	// UnmarshalPerObject and UnmarshalPerByte model the reverse.
	UnmarshalPerObject time.Duration
	UnmarshalPerByte   time.Duration

	// FragmentPerPacket and FragmentPerByte model MNet's user-level,
	// interpreted fragmentation on the send side.
	FragmentPerPacket time.Duration
	FragmentPerByte   time.Duration
	// ReassemblePerPacket and ReassemblePerByte model the receive side.
	ReassemblePerPacket time.Duration
	ReassemblePerByte   time.Duration

	// StreamSetup and StreamTeardown model the JVM cost of creating and
	// closing a TCP socket (beyond the connect round trip on the wire),
	// the "heavy connection and tear-down overheads" of Section 5.
	StreamSetup    time.Duration
	StreamTeardown time.Duration
	// StreamPerMessage models per-write/read overhead of Java stream I/O
	// on an established connection.
	StreamPerMessage time.Duration
	// StreamPerByte models the near-native kernel copy cost of TCP data.
	StreamPerByte time.Duration
}

// JDK1 returns the calibrated 1997 interpreted-JVM model. Calibration
// anchors, all from the paper: 5/19 ms LAN/WAN lock acquisition (Table 1);
// ~3 ms to marshal the table-setting app's replicas (Section 5.1); MNet
// about twice as fast as TCP for sub-256-byte messages (Section 5); the
// basic protocol winning at 1K, the hybrid winning by roughly 30% at 4K/6
// WAN sites and by a large factor at 256K (Figures 9-14).
func JDK1() CostModel {
	return CostModel{
		Name:                "jdk1.1-interpreted",
		MarshalPerObject:    800 * time.Microsecond,
		MarshalPerByte:      2 * time.Microsecond,
		UnmarshalPerObject:  600 * time.Microsecond,
		UnmarshalPerByte:    1500 * time.Nanosecond,
		FragmentPerPacket:   950 * time.Microsecond,
		FragmentPerByte:     9 * time.Microsecond,
		ReassemblePerPacket: 950 * time.Microsecond,
		ReassemblePerByte:   9 * time.Microsecond,
		StreamSetup:         12 * time.Millisecond,
		StreamTeardown:      5 * time.Millisecond,
		StreamPerMessage:    2500 * time.Microsecond,
		StreamPerByte:       20 * time.Nanosecond,
	}
}

// Native returns the zero model: no synthetic costs, pure Go performance.
func Native() CostModel { return CostModel{Name: "native-go"} }

// FastMarshal returns a copy of the model with marshaling costs replaced by
// near-native ones, modelling the paper's planned "custom marshaling
// library that is more efficient for our needs". Used by the marshaling
// ablation.
func (c CostModel) FastMarshal() CostModel {
	d := c
	d.Name = c.Name + "+fast-marshal"
	d.MarshalPerObject = 20 * time.Microsecond
	d.MarshalPerByte = 10 * time.Nanosecond
	d.UnmarshalPerObject = 20 * time.Microsecond
	d.UnmarshalPerByte = 10 * time.Nanosecond
	return d
}

// Scaled returns a copy with every cost multiplied by f, matching
// Profile.Scaled for fast test runs.
func (c CostModel) Scaled(f float64) CostModel {
	if f == 1 {
		return c
	}
	s := func(d time.Duration) time.Duration { return time.Duration(float64(d) * f) }
	d := c
	d.MarshalPerObject = s(c.MarshalPerObject)
	d.MarshalPerByte = s(c.MarshalPerByte)
	d.UnmarshalPerObject = s(c.UnmarshalPerObject)
	d.UnmarshalPerByte = s(c.UnmarshalPerByte)
	d.FragmentPerPacket = s(c.FragmentPerPacket)
	d.FragmentPerByte = s(c.FragmentPerByte)
	d.ReassemblePerPacket = s(c.ReassemblePerPacket)
	d.ReassemblePerByte = s(c.ReassemblePerByte)
	d.StreamSetup = s(c.StreamSetup)
	d.StreamTeardown = s(c.StreamTeardown)
	d.StreamPerMessage = s(c.StreamPerMessage)
	d.StreamPerByte = s(c.StreamPerByte)
	return d
}

// MarshalCost returns the modelled time to marshal one object of n bytes.
func (c CostModel) MarshalCost(n int) time.Duration {
	return c.MarshalPerObject + time.Duration(n)*c.MarshalPerByte
}

// UnmarshalCost returns the modelled time to unmarshal one object of n bytes.
func (c CostModel) UnmarshalCost(n int) time.Duration {
	return c.UnmarshalPerObject + time.Duration(n)*c.UnmarshalPerByte
}

// FragmentCost returns the modelled send-side cost for one fragment of n
// payload bytes.
func (c CostModel) FragmentCost(n int) time.Duration {
	return c.FragmentPerPacket + time.Duration(n)*c.FragmentPerByte
}

// ReassembleCost returns the modelled receive-side cost for one fragment.
func (c CostModel) ReassembleCost(n int) time.Duration {
	return c.ReassemblePerPacket + time.Duration(n)*c.ReassemblePerByte
}

// FragmentMessageCost returns the modelled send-side cost of fragmenting a
// whole message of the given size into the given number of fragments.
func (c CostModel) FragmentMessageCost(frags, bytes int) time.Duration {
	return time.Duration(frags)*c.FragmentPerPacket + time.Duration(bytes)*c.FragmentPerByte
}

// ReassembleMessageCost returns the modelled receive-side cost of
// reassembling a whole message.
func (c CostModel) ReassembleMessageCost(frags, bytes int) time.Duration {
	return time.Duration(frags)*c.ReassemblePerPacket + time.Duration(bytes)*c.ReassemblePerByte
}

// StreamWriteCost returns the modelled cost of one stream write of n bytes.
func (c CostModel) StreamWriteCost(n int) time.Duration {
	return c.StreamPerMessage + time.Duration(n)*c.StreamPerByte
}

// Charge waits for the modelled duration in the calling goroutine. A zero
// or negative duration charges nothing. Waiting uses SleepPrecise because
// the modelled costs are sub-millisecond and the kernel's sleep
// granularity would otherwise dominate them.
func Charge(d time.Duration) {
	SleepPrecise(d)
}
