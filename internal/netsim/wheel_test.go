package netsim

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// wheelAt builds an unstarted wheel and returns it with its epoch, so tests
// drive Advance from a hand-rolled clock instead of wall time.
func wheelAt(tick time.Duration, slots int) (*Wheel, time.Time) {
	w := NewWheel(tick, slots)
	return w, w.start
}

// TestWheelFireOrder drives the wheel with a manual clock and checks timers
// fire in deadline order, FIFO within a tick bucket, fully deterministically.
func TestWheelFireOrder(t *testing.T) {
	w, epoch := wheelAt(time.Millisecond, 64)

	var got []int
	add := func(id int, d time.Duration) {
		w.AfterFunc(d, func() { got = append(got, id) })
	}
	// Deliberately scheduled out of order; 2 and 3 share a deadline and
	// must fire in scheduling order.
	add(4, 9*time.Millisecond)
	add(1, 2*time.Millisecond)
	add(2, 5*time.Millisecond)
	add(3, 5*time.Millisecond)
	add(5, 20*time.Millisecond)

	if n := w.Len(); n != 5 {
		t.Fatalf("Len = %d, want 5", n)
	}
	// Advance in two jumps: past the first three deadlines, then past all.
	if fired := w.Advance(epoch.Add(6 * time.Millisecond)); fired != 3 {
		t.Fatalf("first Advance fired %d, want 3", fired)
	}
	if fired := w.Advance(epoch.Add(30 * time.Millisecond)); fired != 2 {
		t.Fatalf("second Advance fired %d, want 2", fired)
	}
	want := []int{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
	if n := w.Len(); n != 0 {
		t.Fatalf("Len after drain = %d, want 0", n)
	}
}

// TestWheelNeverEarly checks the rounding contract: a timer for d never
// fires before d has elapsed on the driving clock.
func TestWheelNeverEarly(t *testing.T) {
	w, epoch := wheelAt(time.Millisecond, 16)
	fired := false
	w.AfterFunc(3*time.Millisecond, func() { fired = true })
	w.Advance(epoch.Add(3*time.Millisecond - time.Microsecond))
	if fired {
		t.Fatal("timer fired before its deadline")
	}
	w.Advance(epoch.Add(4 * time.Millisecond))
	if !fired {
		t.Fatal("timer did not fire one tick after its deadline")
	}
}

// TestWheelStop checks cancel semantics: Stop before the deadline prevents
// the fire and reports true; Stop after fire (or double Stop) reports false,
// including when the node has been recycled for a new timer.
func TestWheelStop(t *testing.T) {
	w, epoch := wheelAt(time.Millisecond, 16)

	ran := false
	tm := w.AfterFunc(5*time.Millisecond, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer = false, want true")
	}
	if tm.Stop() {
		t.Fatal("second Stop = true, want false")
	}
	w.Advance(epoch.Add(20 * time.Millisecond))
	if ran {
		t.Fatal("stopped timer fired")
	}

	// The freelist recycles the stopped node for the next timer; the stale
	// handle must not cancel it.
	ran2 := false
	tm2 := w.AfterFunc(5*time.Millisecond, func() { ran2 = true })
	if tm.Stop() {
		t.Fatal("stale Stop cancelled a recycled node")
	}
	w.Advance(epoch.Add(40 * time.Millisecond))
	if !ran2 {
		t.Fatal("recycled timer did not fire")
	}
	if tm2.Stop() {
		t.Fatal("Stop after fire = true, want false")
	}

	var zero WheelTimer
	if zero.Stop() {
		t.Fatal("Stop on zero WheelTimer = true, want false")
	}
}

// TestWheelCascade schedules a timer many revolutions out on a tiny wheel,
// so its slot is visited repeatedly before the deadline. It must fire
// exactly once, on time, and short timers sharing the slot must not be
// delayed by it.
func TestWheelCascade(t *testing.T) {
	const slots = 8
	w, epoch := wheelAt(time.Millisecond, slots)

	var fires []int64 // deadlines in ticks, in fire order
	// 100 ticks = 12.5 revolutions of an 8-slot wheel.
	w.AfterFunc(100*time.Millisecond, func() { fires = append(fires, 100) })
	// Same slot (100 & 7 == 4), one revolution earlier and later.
	w.AfterFunc(92*time.Millisecond, func() { fires = append(fires, 92) })
	w.AfterFunc(108*time.Millisecond, func() { fires = append(fires, 108) })
	// Short timer in the same slot, first revolution.
	w.AfterFunc(4*time.Millisecond, func() { fires = append(fires, 4) })

	// Walk tick by tick so a too-early fire would be visible.
	for i := 1; i <= 120; i++ {
		before := len(fires)
		w.Advance(epoch.Add(time.Duration(i) * time.Millisecond))
		for _, d := range fires[before:] {
			if int64(i) < d {
				t.Fatalf("deadline-%d timer fired at tick %d", d, i)
			}
			if int64(i) > d+1 {
				t.Fatalf("deadline-%d timer fired late at tick %d", d, i)
			}
		}
	}
	want := []int64{4, 92, 100, 108}
	if len(fires) != len(want) {
		t.Fatalf("fired %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fire order %v, want %v", fires, want)
		}
	}
}

// TestWheelEvery checks recurring timers fire at each period until stopped.
func TestWheelEvery(t *testing.T) {
	w, epoch := wheelAt(time.Millisecond, 16)
	var n int
	tm := w.Every(3*time.Millisecond, func() { n++ })
	w.Advance(epoch.Add(10 * time.Millisecond)) // deadlines at ticks 3, 6, 9
	if n != 3 {
		t.Fatalf("recurring timer fired %d times in 10 ticks, want 3", n)
	}
	if !tm.Stop() {
		t.Fatal("Stop on recurring timer = false, want true")
	}
	w.Advance(epoch.Add(30 * time.Millisecond))
	if n != 3 {
		t.Fatalf("recurring timer fired after Stop: %d", n)
	}
	if w.Len() != 0 {
		t.Fatalf("Len after Stop = %d, want 0", w.Len())
	}
}

// TestWheelRescheduleFromCallback checks callbacks may schedule new timers
// (the retransmit pattern: each attempt arms the next deadline).
func TestWheelRescheduleFromCallback(t *testing.T) {
	w, epoch := wheelAt(time.Millisecond, 16)
	var hops int
	var arm func()
	arm = func() {
		hops++
		if hops < 5 {
			w.AfterFunc(2*time.Millisecond, arm)
		}
	}
	w.AfterFunc(2*time.Millisecond, arm)
	w.Advance(epoch.Add(50 * time.Millisecond))
	if hops != 5 {
		t.Fatalf("chained reschedule ran %d hops, want 5", hops)
	}
}

// TestWheelCancelFireRace hammers Stop against a concurrently advancing
// wheel under -race: each timer must either fire once or be stopped, never
// both, and the wheel must end empty.
func TestWheelCancelFireRace(t *testing.T) {
	w := NewWheel(100*time.Microsecond, 32)
	w.Start()
	defer w.Close()

	const rounds = 400
	var fired, stopped atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < rounds; i++ {
		d := time.Duration(i%5) * 100 * time.Microsecond
		var once sync.Once
		tm := w.AfterFunc(d, func() {
			once.Do(func() { fired.Add(1) })
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			if tm.Stop() {
				stopped.Add(1)
			}
		}()
	}
	wg.Wait()
	// Wait for every unstopped timer to fire.
	deadline := time.Now().Add(5 * time.Second)
	for fired.Load()+stopped.Load() < rounds && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := fired.Load() + stopped.Load(); got != rounds {
		t.Fatalf("fired %d + stopped %d = %d, want %d", fired.Load(), stopped.Load(), got, rounds)
	}
	if n := w.Len(); n != 0 {
		t.Fatalf("Len after race = %d, want 0", n)
	}
}

// TestWheelStopDuringFireWindow races Stop against a recurring timer's
// fire: after Stop returns true, the callback must never run again.
func TestWheelStopDuringFireWindow(t *testing.T) {
	w := NewWheel(100*time.Microsecond, 32)
	w.Start()
	defer w.Close()

	for i := 0; i < 50; i++ {
		var live atomic.Bool
		live.Store(true)
		var violated atomic.Bool
		tm := w.Every(100*time.Microsecond, func() {
			if !live.Load() {
				violated.Store(true)
			}
		})
		time.Sleep(300 * time.Microsecond)
		tm.Stop()
		live.Store(false)
		// A callback collected before Stop may still be in flight for one
		// beat; the generation check in Advance must suppress it.
		time.Sleep(500 * time.Microsecond)
		if violated.Load() {
			t.Fatal("recurring callback ran after Stop returned")
		}
	}
}

// TestWheelLatencyEquivalence is the property test: for random durations,
// the wheel's fire time matches an ideal per-timer AfterFunc to within one
// tick — same deadline, quantized up to the next bucket boundary.
func TestWheelLatencyEquivalence(t *testing.T) {
	const tick = time.Millisecond
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		w, epoch := wheelAt(tick, 32)
		type sched struct {
			at, d time.Duration // schedule offset and duration
			fired time.Duration // wheel fire time (offset from epoch)
		}
		timers := make([]*sched, 0, 40)
		// Interleave scheduling with advancing, as real endpoints do.
		// Advance one tick at a time so "now" is exact inside callbacks.
		var now time.Duration
		step := func() {
			now += tick
			w.Advance(epoch.Add(now))
		}
		for i := 0; i < 40; i++ {
			s := &sched{
				at: now,
				d:  time.Duration(rng.Int63n(int64(200 * time.Millisecond))),
			}
			timers = append(timers, s)
			cur := s
			w.AfterFunc(cur.d, func() { cur.fired = now })
			for stride := rng.Int63n(8) + 1; stride > 0; stride-- {
				step()
			}
		}
		for i := 0; i < 300; i++ {
			step()
		}

		for i, s := range timers {
			// time.AfterFunc would fire at exactly at+d; the wheel rounds
			// the deadline up to the next bucket boundary, so the fire
			// lands in [ideal, ideal + 1 tick] — never early, never more
			// than one tick late.
			ideal := s.at + s.d
			if s.fired < ideal || s.fired > ideal+tick {
				t.Fatalf("trial %d timer %d: scheduled at %v for %v, fired at %v, want [%v, %v]",
					trial, i, s.at, s.d, s.fired, ideal, ideal+tick)
			}
		}
	}
}

// TestWheelFreelistReuse checks nodes recycle: a burst of schedule/fire
// cycles should settle with no growth in live timers.
func TestWheelFreelistReuse(t *testing.T) {
	w, epoch := wheelAt(time.Millisecond, 16)
	now := time.Duration(0)
	for i := 0; i < 1000; i++ {
		w.AfterFunc(time.Millisecond, func() {})
		now += 2 * time.Millisecond
		w.Advance(epoch.Add(now))
	}
	if n := w.Len(); n != 0 {
		t.Fatalf("Len = %d after drain, want 0", n)
	}
}
