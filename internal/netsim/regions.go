package netsim

import "time"

// Geography lays a reproducible wide-area region structure over a
// simulated network: sites are assigned to Regions round-robin by ID,
// links inside a region get the cheap Local profile, and links between
// regions get the Backbone profile stretched by Step per region of
// "distance". Distances are measured from the region index difference, so
// every region sits at a distinct RTT from region 0 (the home site's
// region) — which is exactly the signal the dissemination overlay's
// RTT-bucket clustering recovers.
//
// Per-link overrides carry the full profile, jitter included: a sender
// draws one uniform roll per packet and the router resolves it against
// the link actually crossed (see Network.routeLocked), so each region hop
// wobbles within its own profile's jitter range while a run stays
// deterministic under a fixed seed.
type Geography struct {
	// Regions is the number of locality clusters (≥ 1).
	Regions int
	// Local is the intra-region link profile.
	Local Profile
	// Backbone is the base inter-region link profile.
	Backbone Profile
	// Step is the extra one-way propagation added per region of distance,
	// spreading the regions to distinct RTTs.
	Step time.Duration
}

// RegionalWAN is the standard regional geography for dissemination
// ablations: fast switched LANs inside each region (with switch-level
// jitter), a slow 1997-class backbone between them (with route-level
// jitter wide enough to matter), and a 6 ms one-way step per region of
// distance
// (12 ms of RTT — matching the overlay's 12 ms bucket, so regions land in
// distinct buckets even with backbone jitter on the measurements).
func RegionalWAN(regions int) Geography {
	return Geography{
		Regions: regions,
		Local: Profile{
			Name:           "region-lan",
			PropDelay:      300 * time.Microsecond,
			Jitter:         100 * time.Microsecond,
			BytesPerSecond: 100_000_000 / 8, // 100 Mbit/s
			HeaderBytes:    28,
		},
		Backbone: Profile{
			Name:           "region-backbone",
			PropDelay:      18 * time.Millisecond,
			Jitter:         2 * time.Millisecond,
			BytesPerSecond: 4_000_000 / 8, // 4 Mbit/s
			HeaderBytes:    28,
		},
		Step: 6 * time.Millisecond,
	}
}

// Scaled returns a copy with every delay multiplied by f and bandwidth
// divided by f, mirroring Profile.Scaled for fast test runs.
func (g Geography) Scaled(f float64) Geography {
	if f == 1 {
		return g
	}
	q := g
	q.Local = g.Local.Scaled(f)
	q.Backbone = g.Backbone.Scaled(f)
	q.Step = time.Duration(float64(g.Step) * f)
	return q
}

// RegionOf maps a node to its region: round-robin by ID, anchored so the
// home site (ID 1) lands in region 0.
func (g Geography) RegionOf(id NodeID) int {
	if g.Regions <= 1 {
		return 0
	}
	return int(id-1) % g.Regions
}

// LinkProfile returns the one-way profile for the ordered pair (from, to).
func (g Geography) LinkProfile(from, to NodeID) Profile {
	ra, rb := g.RegionOf(from), g.RegionOf(to)
	if ra == rb {
		return g.Local
	}
	dist := ra - rb
	if dist < 0 {
		dist = -dist
	}
	p := g.Backbone
	p.PropDelay += time.Duration(dist) * g.Step
	return p
}

// Apply installs the geography on a network as per-link profile overrides
// for every ordered pair of the given nodes (including self-links, which
// get the Local profile). O(n²) overrides — fine for the few hundred
// sites the ablations run.
func (g Geography) Apply(net *Network, nodes []NodeID) {
	for _, a := range nodes {
		for _, b := range nodes {
			net.SetLinkProfile(a, b, g.LinkProfile(a, b))
		}
	}
}
