// Package overlay is Mocha's locality-aware dissemination overlay. It
// clusters sharing sites into buckets by measured round-trip time, elects
// one relay per bucket, and plans release-time pushes so the releaser's
// uplink carries one frame per region instead of one per sharer; the relay
// re-fans the version over its cheap local links (core/transfer.go speaks
// the RelayPush/RelayAck protocol the plan drives).
//
// Relays are scored continuously: every observed ack pulls a peer's score
// toward perfect, every loss or pathologically slow aggregated ack pulls
// it toward zero, and a peer below the health floor is never elected — so
// a sick relay demotes itself after a couple of bad rounds and its bucket
// degrades to direct pushes instead of losing versions. All planning is
// deterministic given the same observations (ties break on the lowest
// site ID), which keeps the seeded simulation harnesses replayable.
package overlay

import (
	"sort"
	"sync"
	"time"

	"mocha/internal/obs"
	"mocha/internal/wire"
)

// Config parameterizes a Tracker. The zero value is usable: defaults are
// filled in by NewTracker.
type Config struct {
	// BucketWidth is the RTT quantum: peers whose smoothed RTT falls in the
	// same BucketWidth-wide band share a locality bucket. Default 12ms —
	// matching the regional WAN geography's 12 ms RTT distance step, so
	// regions stay in distinct buckets while per-link jitter (up to 2 ms a
	// hop on the backbone) and serialization noise are absorbed.
	BucketWidth time.Duration
	// Alpha is the EWMA weight of a new sample (0 < Alpha <= 1). Default
	// 0.5: two consecutive losses demote a perfect peer below the default
	// health floor, which makes failure detection fast and deterministic.
	Alpha float64
	// HealthFloor is the minimum score a peer needs to be electable as a
	// relay. Default 0.5.
	HealthFloor float64
	// SlowFactor caps how much slower than its own RTT a relay's
	// aggregated ack may be before the ack counts against the relay
	// instead of for it. The re-fan adds local round trips on top of the
	// relay hop, so the cap is generous: ack latency above
	// SlowFactor × (2 × RTT) is "slow". Default 16.
	SlowFactor float64
	// Metrics receives relay-score gauge updates (nil-safe).
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.BucketWidth <= 0 {
		c.BucketWidth = 12 * time.Millisecond
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.5
	}
	if c.HealthFloor <= 0 {
		c.HealthFloor = 0.5
	}
	if c.SlowFactor <= 0 {
		c.SlowFactor = 16
	}
	return c
}

// peer is one remote site's observed quality state.
type peer struct {
	rtt    time.Duration // smoothed request RTT; valid only if hasRTT
	hasRTT bool
	ackLat time.Duration // smoothed aggregated-ack latency; 0 until first ack
	score  float64       // 1 = perfect, 0 = dead; starts at 1
	acks   int64
	losses int64
}

// Tracker accumulates per-peer RTT and relay-quality observations and
// plans locality-bucketed dissemination. All methods are safe for
// concurrent use.
type Tracker struct {
	cfg Config

	mu    sync.Mutex
	peers map[wire.SiteID]*peer
}

// NewTracker builds an empty tracker.
func NewTracker(cfg Config) *Tracker {
	return &Tracker{cfg: cfg.withDefaults(), peers: make(map[wire.SiteID]*peer)}
}

// get returns the peer record, creating a perfect-score one. Caller holds mu.
func (t *Tracker) get(site wire.SiteID) *peer {
	p := t.peers[site]
	if p == nil {
		p = &peer{score: 1}
		t.peers[site] = p
	}
	return p
}

// publish pushes the peer's score gauge. Caller holds mu.
func (t *Tracker) publish(site wire.SiteID, p *peer) {
	t.cfg.Metrics.RelayScoreSet(uint32(site), int64(p.score*1000))
}

// Observe records one request-RTT sample for a peer — the signal locality
// buckets are built from — and nudges its score toward healthy (a peer we
// can complete round trips with is alive).
func (t *Tracker) Observe(site wire.SiteID, rtt time.Duration) {
	if rtt < 0 {
		return
	}
	t.mu.Lock()
	p := t.get(site)
	if p.hasRTT {
		a := t.cfg.Alpha
		p.rtt = time.Duration(a*float64(rtt) + (1-a)*float64(p.rtt))
	} else {
		p.rtt = rtt
		p.hasRTT = true
	}
	p.score += t.cfg.Alpha * (1 - p.score)
	t.publish(site, p)
	t.mu.Unlock()
}

// ObserveAck records a relay's aggregated-ack latency. A timely ack pulls
// the score toward perfect; an ack slower than SlowFactor × (2 × RTT)
// counts as a slow round and pulls the score down instead, so a relay that
// answers but crawls is demoted and routed around. Ack latency includes
// the relay's whole local re-fan, so it deliberately does NOT feed the RTT
// estimate used for bucketing.
func (t *Tracker) ObserveAck(site wire.SiteID, lat time.Duration) {
	t.mu.Lock()
	p := t.get(site)
	p.acks++
	if p.ackLat == 0 {
		p.ackLat = lat
	} else {
		a := t.cfg.Alpha
		p.ackLat = time.Duration(a*float64(lat) + (1-a)*float64(p.ackLat))
	}
	slow := p.hasRTT && float64(lat) > t.cfg.SlowFactor*2*float64(p.rtt)
	if slow {
		p.score -= t.cfg.Alpha * p.score
	} else {
		p.score += t.cfg.Alpha * (1 - p.score)
	}
	t.publish(site, p)
	t.mu.Unlock()
}

// ObserveLoss records a failed or timed-out exchange with a peer, pulling
// its score toward dead. With the default Alpha, two consecutive losses
// drop a perfect peer below the default health floor.
func (t *Tracker) ObserveLoss(site wire.SiteID) {
	t.mu.Lock()
	p := t.get(site)
	p.losses++
	p.score -= t.cfg.Alpha * p.score
	t.publish(site, p)
	t.mu.Unlock()
}

// Score reports a peer's current quality score in [0, 1]. Unobserved
// peers score a perfect 1 (innocent until proven slow).
func (t *Tracker) Score(site wire.SiteID) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p := t.peers[site]; p != nil {
		return p.score
	}
	return 1
}

// RTT reports a peer's smoothed request RTT and whether one is known.
func (t *Tracker) RTT(site wire.SiteID) (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p := t.peers[site]; p != nil && p.hasRTT {
		return p.rtt, true
	}
	return 0, false
}

// Healthy reports whether a peer is electable as a relay.
func (t *Tracker) Healthy(site wire.SiteID) bool {
	return t.Score(site) >= t.cfg.HealthFloor
}

// Group is one locality bucket of a dissemination plan: the releaser sends
// the version once to Relay, which re-fans it to Members.
type Group struct {
	Relay   wire.SiteID
	Members []wire.SiteID
}

// Plan is a locality-bucketed dissemination plan: one relay hop per group
// plus direct pushes for sites the overlay cannot (or should not) cluster.
type Plan struct {
	Groups []Group
	Direct []wire.SiteID
}

// Plan buckets targets by smoothed RTT and elects one healthy relay per
// bucket (highest score; ties break on the lowest site ID). Targets fall
// back to Direct when the overlay has no RTT sample for them, when their
// bucket is a singleton (a relay hop would only add latency), or when no
// bucket member is healthy. Output ordering is deterministic: groups by
// ascending bucket, members and directs ascending by site ID.
func (t *Tracker) Plan(targets []wire.SiteID) Plan {
	t.mu.Lock()
	buckets := make(map[int][]wire.SiteID)
	var plan Plan
	for _, site := range targets {
		p := t.peers[site]
		if p == nil || !p.hasRTT {
			plan.Direct = append(plan.Direct, site)
			continue
		}
		b := int(p.rtt / t.cfg.BucketWidth)
		buckets[b] = append(buckets[b], site)
	}
	keys := make([]int, 0, len(buckets))
	for b := range buckets {
		keys = append(keys, b)
	}
	sort.Ints(keys)
	for _, b := range keys {
		members := buckets[b]
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		if len(members) < 2 {
			plan.Direct = append(plan.Direct, members...)
			continue
		}
		relay := wire.SiteID(0)
		best := -1.0
		for _, site := range members {
			p := t.peers[site]
			if p.score < t.cfg.HealthFloor {
				continue
			}
			if p.score > best {
				best = p.score
				relay = site
			}
		}
		if best < 0 {
			// No healthy candidate: degrade the whole bucket to direct.
			plan.Direct = append(plan.Direct, members...)
			continue
		}
		rest := make([]wire.SiteID, 0, len(members)-1)
		for _, site := range members {
			if site != relay {
				rest = append(rest, site)
			}
		}
		plan.Groups = append(plan.Groups, Group{Relay: relay, Members: rest})
	}
	t.mu.Unlock()
	sort.Slice(plan.Direct, func(i, j int) bool { return plan.Direct[i] < plan.Direct[j] })
	t.cfg.Metrics.GaugeSet(obs.GRelayBuckets, int64(len(plan.Groups)))
	return plan
}

// SeedFromSpans feeds the tracker from the obs span ring: every recorded
// span whose phases include a request-RTT measurement contributes one RTT
// sample for the span's site. This is how harnesses (and eventually the
// steady-state protocol) turn the acquire instrumentation that already
// exists into dissemination geography. Returns the number of samples
// absorbed.
func SeedFromSpans(t *Tracker, spans []obs.SpanRecord) int {
	phase := obs.HRequestRTT.PhaseName()
	n := 0
	for i := range spans {
		sp := &spans[i]
		if sp.Site == 0 {
			continue
		}
		for _, ph := range sp.Phases {
			if ph.Name == phase && ph.Dur > 0 {
				t.Observe(wire.SiteID(sp.Site), ph.Dur)
				n++
			}
		}
	}
	return n
}
