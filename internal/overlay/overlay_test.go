package overlay

import (
	"testing"
	"time"

	"mocha/internal/obs"
	"mocha/internal/wire"
)

func seedRTT(t *Tracker, rtt time.Duration, sites ...wire.SiteID) {
	for _, s := range sites {
		t.Observe(s, rtt)
	}
}

func TestPlanBucketsByRTTAndElectsLowestID(t *testing.T) {
	tr := NewTracker(Config{})
	seedRTT(tr, 5*time.Millisecond, 2, 3, 4)
	seedRTT(tr, 52*time.Millisecond, 5, 6, 7)

	plan := tr.Plan([]wire.SiteID{2, 3, 4, 5, 6, 7})
	if len(plan.Groups) != 2 {
		t.Fatalf("groups = %d, want 2 (%+v)", len(plan.Groups), plan)
	}
	if len(plan.Direct) != 0 {
		t.Fatalf("direct = %v, want none", plan.Direct)
	}
	// Equal scores: the lowest site ID in each bucket is elected.
	if got := plan.Groups[0].Relay; got != 2 {
		t.Errorf("near bucket relay = %d, want 2", got)
	}
	if got := plan.Groups[1].Relay; got != 5 {
		t.Errorf("far bucket relay = %d, want 5", got)
	}
	if got := plan.Groups[0].Members; len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("near bucket members = %v, want [3 4]", got)
	}
}

func TestPlanUnknownRTTAndSingletonsGoDirect(t *testing.T) {
	tr := NewTracker(Config{})
	seedRTT(tr, 5*time.Millisecond, 2, 3)
	seedRTT(tr, 95*time.Millisecond, 9) // singleton bucket

	plan := tr.Plan([]wire.SiteID{2, 3, 8, 9}) // 8 was never observed
	if len(plan.Groups) != 1 || plan.Groups[0].Relay != 2 {
		t.Fatalf("plan groups = %+v, want one group with relay 2", plan.Groups)
	}
	if len(plan.Direct) != 2 || plan.Direct[0] != 8 || plan.Direct[1] != 9 {
		t.Fatalf("direct = %v, want [8 9]", plan.Direct)
	}
}

func TestLossDemotesRelayAndRoutesAround(t *testing.T) {
	tr := NewTracker(Config{})
	seedRTT(tr, 5*time.Millisecond, 2, 3, 4)

	// Two consecutive losses drop a perfect score below the 0.5 floor.
	tr.ObserveLoss(2)
	tr.ObserveLoss(2)
	if tr.Healthy(2) {
		t.Fatalf("site 2 still healthy after two losses, score %.3f", tr.Score(2))
	}
	plan := tr.Plan([]wire.SiteID{2, 3, 4})
	if len(plan.Groups) != 1 || plan.Groups[0].Relay != 3 {
		t.Fatalf("plan = %+v, want relay 3 after demoting 2", plan)
	}

	// A demoted peer is still a member — it must keep receiving versions.
	found := false
	for _, m := range plan.Groups[0].Members {
		if m == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("demoted site 2 missing from members %v", plan.Groups[0].Members)
	}

	// With every member demoted, the bucket degrades to direct pushes.
	for _, s := range []wire.SiteID{3, 4} {
		tr.ObserveLoss(s)
		tr.ObserveLoss(s)
	}
	plan = tr.Plan([]wire.SiteID{2, 3, 4})
	if len(plan.Groups) != 0 || len(plan.Direct) != 3 {
		t.Fatalf("plan = %+v, want all-direct degraded bucket", plan)
	}
}

func TestAckRecoversScoreAndSlowAckDemotes(t *testing.T) {
	tr := NewTracker(Config{})
	tr.Observe(2, 2*time.Millisecond)
	tr.ObserveLoss(2)
	tr.ObserveLoss(2)
	if tr.Healthy(2) {
		t.Fatal("expected demotion before recovery")
	}
	// Timely acks pull the score back up.
	for i := 0; i < 3; i++ {
		tr.ObserveAck(2, 4*time.Millisecond)
	}
	if !tr.Healthy(2) {
		t.Fatalf("score %.3f still below floor after three good acks", tr.Score(2))
	}

	// A pathologically slow aggregated ack counts against the relay.
	before := tr.Score(2)
	tr.ObserveAck(2, 10*time.Second)
	if after := tr.Score(2); after >= before {
		t.Fatalf("slow ack raised score: %.3f -> %.3f", before, after)
	}
}

func TestObserveSmoothsRTT(t *testing.T) {
	tr := NewTracker(Config{})
	tr.Observe(2, 10*time.Millisecond)
	tr.Observe(2, 20*time.Millisecond)
	rtt, ok := tr.RTT(2)
	if !ok {
		t.Fatal("no RTT after two samples")
	}
	if rtt != 15*time.Millisecond { // alpha 0.5 EWMA
		t.Fatalf("rtt = %v, want 15ms", rtt)
	}
	if _, ok := tr.RTT(3); ok {
		t.Fatal("unobserved site reported an RTT")
	}
	if tr.Score(3) != 1 {
		t.Fatalf("unobserved site score = %v, want 1", tr.Score(3))
	}
	tr.Observe(2, -time.Millisecond) // negative samples are ignored
	if got, _ := tr.RTT(2); got != 15*time.Millisecond {
		t.Fatalf("negative sample moved RTT to %v", got)
	}
}

func TestScoresPublishedToRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	tr := NewTracker(Config{Metrics: reg})
	tr.Observe(7, time.Millisecond)
	if got := reg.RelayScoreValue(7); got != 1000 {
		t.Fatalf("published score = %d, want 1000", got)
	}
	tr.ObserveLoss(7)
	if got := reg.RelayScoreValue(7); got != 500 {
		t.Fatalf("published score after loss = %d, want 500", got)
	}
	tr.Plan([]wire.SiteID{})
	if got := reg.GaugeValue(obs.GRelayBuckets); got != 0 {
		t.Fatalf("bucket gauge = %d, want 0", got)
	}
}

func TestSeedFromSpans(t *testing.T) {
	tr := NewTracker(Config{})
	spans := []obs.SpanRecord{
		{Site: 4, Phases: []obs.SpanPhase{{Name: "request_rtt", Dur: 30 * time.Millisecond}}},
		{Site: 5, Phases: []obs.SpanPhase{{Name: "queue_wait", Dur: time.Millisecond}}},
		{Site: 0, Phases: []obs.SpanPhase{{Name: "request_rtt", Dur: time.Millisecond}}},
	}
	if n := SeedFromSpans(tr, spans); n != 1 {
		t.Fatalf("seeded %d samples, want 1", n)
	}
	rtt, ok := tr.RTT(4)
	if !ok || rtt != 30*time.Millisecond {
		t.Fatalf("site 4 RTT = %v/%v, want 30ms", rtt, ok)
	}
	if _, ok := tr.RTT(5); ok {
		t.Fatal("span without a request_rtt phase produced an RTT")
	}
}
