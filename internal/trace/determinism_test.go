package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"mocha/internal/eventlog"
	"mocha/internal/obs"
	"mocha/internal/wire"
)

// TestMergeTieBreakDeterminism pins the equal-timestamp ordering: ties
// break by sequence number first, then by site ID, so two merges of the
// same logs agree regardless of map iteration order.
func TestMergeTieBreakDeterminism(t *testing.T) {
	ts := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	perSite := map[wire.SiteID][]eventlog.Event{
		3: {
			{Seq: 2, Time: ts, Category: "c", Text: "site3 seq2"},
			{Seq: 1, Time: ts, Category: "c", Text: "site3 seq1"},
		},
		1: {
			{Seq: 2, Time: ts, Category: "c", Text: "site1 seq2"},
			{Seq: 1, Time: ts, Category: "c", Text: "site1 seq1"},
		},
		2: {
			{Seq: 1, Time: ts, Category: "c", Text: "site2 seq1"},
		},
	}
	want := []string{
		// Seq ascending first; equal (time, seq) breaks by site.
		"site1 seq1", "site2 seq1", "site3 seq1",
		"site1 seq2", "site3 seq2",
	}
	for trial := 0; trial < 20; trial++ {
		tl := Merge(perSite)
		var got []string
		for _, r := range tl.Records {
			got = append(got, r.Text)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: order %v, want %v", trial, got, want)
		}
	}
}

// TestMergeDeterministicUnderShuffle merges randomly ordered copies of
// the same records and requires byte-identical JSON output every time.
func TestMergeDeterministicUnderShuffle(t *testing.T) {
	base := time.Date(2026, 8, 5, 9, 0, 0, 0, time.UTC)
	var events []eventlog.Event
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		events = append(events, eventlog.Event{
			Seq:      uint64(i + 1),
			Time:     base.Add(time.Duration(rng.Intn(5)) * time.Millisecond),
			Category: "c",
			Text:     string(rune('a' + i%26)),
		})
	}
	render := func(shuffled []eventlog.Event) string {
		tl := Merge(map[wire.SiteID][]eventlog.Event{1: shuffled})
		var buf bytes.Buffer
		if err := tl.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := render(events)
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]eventlog.Event(nil), events...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := render(shuffled); got != first {
			t.Fatalf("trial %d: merge output depends on input order", trial)
		}
	}
}

// TestJSONRoundTripAwkwardText round-trips records whose messages and
// fields carry newlines, non-ASCII text, and JSON metacharacters through
// the JSON-lines format.
func TestJSONRoundTripAwkwardText(t *testing.T) {
	ts := time.Date(2026, 8, 5, 10, 30, 0, 123456789, time.UTC)
	tl := &Timeline{Records: []Record{
		{Site: 1, Seq: 1, Time: ts, Category: "fault",
			Text: "line one\nline two\twith tab"},
		{Site: 2, Seq: 2, Time: ts.Add(time.Millisecond), Category: "sync",
			Text: `quotes "inside" and backslash \ and braces {}`},
		{Site: 3, Seq: 3, Time: ts.Add(2 * time.Millisecond), Category: "xfer",
			Msg: "übertragung abgeschlossen — 完了",
			Fields: []obs.Field{
				obs.S("note", "naïve\nmulti-line ✓"),
				obs.I("bytes", -42),
			}},
	}}
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// JSON-lines: exactly one line per record despite embedded newlines.
	if got := strings.Count(buf.String(), "\n"); got != len(tl.Records) {
		t.Fatalf("output has %d newlines, want %d (one per record)", got, len(tl.Records))
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Records, tl.Records) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", back.Records, tl.Records)
	}
	if got := back.Records[2].Render(); got != "übertragung abgeschlossen — 完了 note=naïve\nmulti-line ✓ bytes=-42" {
		t.Fatalf("typed Render after round trip = %q", got)
	}
}
