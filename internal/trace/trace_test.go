package trace

import (
	"strings"
	"testing"
	"time"

	"mocha/internal/eventlog"
	"mocha/internal/wire"
)

// sample builds a two-site timeline.
func sample() *Timeline {
	base := time.Unix(100, 0)
	return Merge(map[wire.SiteID][]eventlog.Event{
		1: {
			{Seq: 1, Time: base, Category: "lock", Text: "granted lock 1"},
			{Seq: 2, Time: base.Add(5 * time.Millisecond), Category: "xfer", Text: "sent 1024 bytes"},
		},
		2: {
			{Seq: 1, Time: base.Add(2 * time.Millisecond), Category: "daemon", Text: "applied v2"},
			{Seq: 2, Time: base.Add(9 * time.Millisecond), Category: "lock", Text: "released"},
		},
	})
}

func TestMergeOrder(t *testing.T) {
	tl := sample()
	if len(tl.Records) != 4 {
		t.Fatalf("records = %d", len(tl.Records))
	}
	for i := 1; i < len(tl.Records); i++ {
		if tl.Records[i].Time.Before(tl.Records[i-1].Time) {
			t.Fatal("records out of order")
		}
	}
	if tl.Records[0].Site != 1 || tl.Records[1].Site != 2 {
		t.Fatalf("interleave wrong: %v %v", tl.Records[0], tl.Records[1])
	}
	if got := tl.Sites(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("sites = %v", got)
	}
	if got := tl.Span(); got != 9*time.Millisecond {
		t.Fatalf("span = %v", got)
	}
}

func TestFilter(t *testing.T) {
	tl := sample()
	if got := tl.Filter([]string{"lock"}, nil); len(got.Records) != 2 {
		t.Fatalf("category filter: %d", len(got.Records))
	}
	if got := tl.Filter(nil, []wire.SiteID{2}); len(got.Records) != 2 {
		t.Fatalf("site filter: %d", len(got.Records))
	}
	if got := tl.Filter([]string{"lock"}, []wire.SiteID{2}); len(got.Records) != 1 {
		t.Fatalf("combined filter: %d", len(got.Records))
	}
	if got := tl.Filter(nil, nil); len(got.Records) != 4 {
		t.Fatalf("empty filter: %d", len(got.Records))
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tl := sample()
	var sb strings.Builder
	if err := tl.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(tl.Records) {
		t.Fatalf("round trip lost records: %d", len(got.Records))
	}
	for i := range got.Records {
		a, b := got.Records[i], tl.Records[i]
		if a.Site != b.Site || a.Category != b.Category || a.Text != b.Text || !a.Time.Equal(b.Time) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	if _, err := ReadJSON(strings.NewReader("not json\n")); err == nil {
		t.Fatal("bad input parsed")
	}
}

func TestRender(t *testing.T) {
	tl := sample()
	var sb strings.Builder
	if err := tl.Render(&sb, RenderOptions{LaneWidth: 30}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"site 1", "site 2", "[lock] granted lock 1", "[daemon] applied v2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // header + rule + 4 events
		t.Fatalf("render has %d lines:\n%s", len(lines), out)
	}

	// Truncation.
	sb.Reset()
	if err := tl.Render(&sb, RenderOptions{MaxRecords: 2}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2 more records") {
		t.Fatalf("truncation note missing:\n%s", sb.String())
	}

	// Empty timeline must not panic.
	sb.Reset()
	if err := (&Timeline{}).Render(&sb, RenderOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty") {
		t.Fatal("empty render note missing")
	}
}

func TestSummary(t *testing.T) {
	out := sample().Summary()
	for _, want := range []string{"site", "daemon", "lock", "xfer"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
