// Package trace provides Mocha's execution visualization support — the
// future work the paper's conclusion announces ("visualization support to
// provide greater insight into the execution of wide area distributed
// applications"). It merges the per-site event logs into one causally
// time-ordered timeline, renders it as per-site swimlanes for terminal
// viewing (via cmd/mochaviz), summarizes activity by site and category,
// and round-trips through JSON lines for offline analysis.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"mocha/internal/eventlog"
	"mocha/internal/obs"
	"mocha/internal/stats"
	"mocha/internal/wire"
)

// Record is one site-attributed event. Typed events keep their message
// and structured fields through the JSON round trip; legacy events carry
// pre-rendered Text. Render produces the display form either way.
type Record struct {
	Site     wire.SiteID `json:"site"`
	Seq      uint64      `json:"seq"`
	Time     time.Time   `json:"time"`
	Category string      `json:"category"`
	Text     string      `json:"text,omitempty"`
	Msg      string      `json:"msg,omitempty"`
	Fields   []obs.Field `json:"fields,omitempty"`
}

// Render produces the record's human-readable message, formatting typed
// fields on demand.
func (r Record) Render() string {
	if r.Msg == "" {
		return r.Text
	}
	return obs.FormatFields(r.Msg, r.Fields)
}

// Timeline is a merged, time-ordered event sequence across sites.
type Timeline struct {
	Records []Record
}

// Merge builds a timeline from per-site event logs, ordered by timestamp
// (per-site sequence numbers break ties, then site IDs). Typed events
// pass through with their structured fields intact.
func Merge(perSite map[wire.SiteID][]eventlog.Event) *Timeline {
	t := &Timeline{}
	for site, events := range perSite {
		for _, e := range events {
			t.Records = append(t.Records, Record{
				Site:     site,
				Seq:      e.Seq,
				Time:     e.Time,
				Category: e.Category,
				Text:     e.Text,
				Msg:      e.Msg,
				Fields:   e.Fields,
			})
		}
	}
	t.sort()
	return t
}

// sort orders records deterministically: by timestamp, with equal
// timestamps broken by sequence number and then site ID, so two merges
// of the same logs always agree regardless of map iteration order.
func (t *Timeline) sort() {
	sort.SliceStable(t.Records, func(i, j int) bool {
		a, b := t.Records[i], t.Records[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Site < b.Site
	})
}

// Sites lists the sites appearing in the timeline, ascending.
func (t *Timeline) Sites() []wire.SiteID {
	seen := map[wire.SiteID]bool{}
	for _, r := range t.Records {
		seen[r.Site] = true
	}
	out := make([]wire.SiteID, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Filter returns a timeline restricted to the given categories and sites;
// empty selectors mean "all".
func (t *Timeline) Filter(categories []string, sites []wire.SiteID) *Timeline {
	wantCat := map[string]bool{}
	for _, c := range categories {
		wantCat[c] = true
	}
	wantSite := map[wire.SiteID]bool{}
	for _, s := range sites {
		wantSite[s] = true
	}
	out := &Timeline{}
	for _, r := range t.Records {
		if len(wantCat) > 0 && !wantCat[r.Category] {
			continue
		}
		if len(wantSite) > 0 && !wantSite[r.Site] {
			continue
		}
		out.Records = append(out.Records, r)
	}
	return out
}

// WriteJSON emits the timeline as JSON lines.
func (t *Timeline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range t.Records {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("trace: encode: %w", err)
		}
	}
	return nil
}

// ReadJSON parses a timeline written by WriteJSON.
func ReadJSON(r io.Reader) (*Timeline, error) {
	t := &Timeline{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	t.sort()
	return t, nil
}

// RenderOptions tunes the swimlane view.
type RenderOptions struct {
	// LaneWidth is the column width per site (default 34).
	LaneWidth int
	// MaxRecords truncates long timelines (default: all).
	MaxRecords int
}

// Render draws per-site swimlanes: one row per event, offset in
// milliseconds from the first event, with the event placed in its site's
// lane.
func (t *Timeline) Render(w io.Writer, opts RenderOptions) error {
	if opts.LaneWidth <= 0 {
		opts.LaneWidth = 34
	}
	sites := t.Sites()
	if len(sites) == 0 {
		_, err := fmt.Fprintln(w, "(empty timeline)")
		return err
	}
	lane := map[wire.SiteID]int{}
	for i, s := range sites {
		lane[s] = i
	}

	// Header.
	var sb strings.Builder
	sb.WriteString(pad("t(ms)", 10))
	for _, s := range sites {
		sb.WriteString(pad(fmt.Sprintf("site %d", s), opts.LaneWidth))
	}
	if _, err := fmt.Fprintln(w, sb.String()); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", 10+opts.LaneWidth*len(sites))); err != nil {
		return err
	}

	base := t.Records[0].Time
	n := len(t.Records)
	if opts.MaxRecords > 0 && n > opts.MaxRecords {
		n = opts.MaxRecords
	}
	for _, r := range t.Records[:n] {
		offset := float64(r.Time.Sub(base)) / float64(time.Millisecond)
		cell := fmt.Sprintf("[%s] %s", r.Category, r.Render())
		if len(cell) > opts.LaneWidth-2 {
			// Truncate on a rune boundary; padding is byte-based, so keep
			// the marker ASCII.
			cut := opts.LaneWidth - 4
			for cut > 0 && cell[cut]&0xC0 == 0x80 {
				cut--
			}
			cell = cell[:cut] + ".."
		}
		var row strings.Builder
		row.WriteString(pad(fmt.Sprintf("%9.2f", offset), 10))
		for i := 0; i < len(sites); i++ {
			if i == lane[r.Site] {
				row.WriteString(pad(cell, opts.LaneWidth))
			} else {
				row.WriteString(pad("·", opts.LaneWidth))
			}
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(row.String(), " ")); err != nil {
			return err
		}
	}
	if n < len(t.Records) {
		if _, err := fmt.Fprintf(w, "... %d more records (raise -max)\n", len(t.Records)-n); err != nil {
			return err
		}
	}
	return nil
}

// pad right-pads s to width (always at least one trailing space).
func pad(s string, width int) string {
	if len(s) >= width {
		return s[:width-1] + " "
	}
	return s + strings.Repeat(" ", width-len(s))
}

// Summary renders per-site, per-category event counts.
func (t *Timeline) Summary() string {
	type key struct {
		site wire.SiteID
		cat  string
	}
	counts := map[key]int{}
	cats := map[string]bool{}
	for _, r := range t.Records {
		counts[key{r.Site, r.Category}]++
		cats[r.Category] = true
	}
	catList := make([]string, 0, len(cats))
	for c := range cats {
		catList = append(catList, c)
	}
	sort.Strings(catList)

	header := append([]string{"site"}, catList...)
	cells := make([]any, 0, len(header))
	tb := stats.NewTable(header...)
	for _, s := range t.Sites() {
		cells = cells[:0]
		cells = append(cells, s)
		for _, c := range catList {
			cells = append(cells, counts[key{s, c}])
		}
		tb.AddRow(cells...)
	}
	return tb.String()
}

// Span reports the wall-clock duration the timeline covers.
func (t *Timeline) Span() time.Duration {
	if len(t.Records) < 2 {
		return 0
	}
	return t.Records[len(t.Records)-1].Time.Sub(t.Records[0].Time)
}
