package runtime

import (
	"context"
	"fmt"
	rt "runtime"
	"sync/atomic"
	"time"

	"mocha/internal/core"
	"mocha/internal/marshal"
	"mocha/internal/wire"
)

// Mocha is the travel bag: "the Mocha runtime is able to provide the
// application thread with a Mocha object that is essentially a 'travel
// bag'." It carries the initial Parameter object, a Result object, remote
// printing and stack dumps, replica support, and recursive spawning — all
// gated by the hosting site's permissions.
type Mocha struct {
	rt      *Runtime
	handle  *core.Handle
	spawnID uint64
	home    wire.SiteID
	class   string

	// Parameter holds the initial execution parameters from the spawn.
	Parameter *Params
	// Result collects values for returnResults().
	Result *Params

	perms    Permissions
	returned atomic.Bool
}

// Class names the task class this bag belongs to.
func (m *Mocha) Class() string { return m.class }

// Site reports the hosting site.
func (m *Mocha) Site() wire.SiteID { return m.rt.node.Site() }

// Home reports the site the task reports back to.
func (m *Mocha) Home() wire.SiteID { return m.home }

// Handle exposes the task's application-thread handle for advanced use.
func (m *Mocha) Handle() *core.Handle { return m.handle }

// Node exposes the site's shared-object node.
func (m *Mocha) Node() *core.Node { return m.rt.node }

// SetLease declares the task's expected lock hold time (Section 4's
// "threads indicate approximately how long they need to hold a lock").
func (m *Mocha) SetLease(d time.Duration) { m.handle.SetLease(d) }

// homeAddr resolves the home runtime port.
func (m *Mocha) homeAddr() (string, error) {
	return m.rt.node.RuntimeAddr(m.home)
}

// sendHome transmits a runtime message to the home site.
func (m *Mocha) sendHome(p wire.Payload) error {
	addr, err := m.homeAddr()
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), m.rt.node.RequestTimeout())
	defer cancel()
	return m.rt.port.Send(ctx, addr, wire.Marshal(p))
}

// MochaPrintln routes a line to the home site's console — remote printing.
func (m *Mocha) MochaPrintln(text string) {
	if m.home == m.rt.node.Site() {
		fmt.Fprintf(m.rt.cfg.Output, "[site%d #%d] %s\n", m.Site(), m.spawnID, text)
		return
	}
	msg := &wire.Print{SpawnID: m.spawnID, Site: m.rt.node.Site(), Text: text}
	if err := m.sendHome(msg); err != nil {
		m.rt.node.Log().Logf("runtime", "remote print failed: %v", err)
	}
}

// MochaPrintf is MochaPrintln with formatting.
func (m *Mocha) MochaPrintf(format string, args ...any) {
	m.MochaPrintln(fmt.Sprintf(format, args...))
}

// MochaPrintStackTrace ships the current goroutine stack and the error to
// the home site — the paper's remote stack dumps for debugging code at
// remote locations.
func (m *Mocha) MochaPrintStackTrace(cause error) {
	buf := make([]byte, 16*1024)
	n := rt.Stack(buf, false)
	reason := "stack dump"
	if cause != nil {
		reason = cause.Error()
	}
	if m.home == m.rt.node.Site() {
		fmt.Fprintf(m.rt.cfg.Output, "[site%d #%d] stack dump (%s):\n%s\n", m.Site(), m.spawnID, reason, buf[:n])
		return
	}
	msg := &wire.StackDump{SpawnID: m.spawnID, Site: m.rt.node.Site(), Reason: reason, Stack: buf[:n]}
	if err := m.sendHome(msg); err != nil {
		m.rt.node.Log().Logf("runtime", "remote stack dump failed: %v", err)
	}
}

// ReturnResults sends the Result object to the home site, fulfilling
// mocha.returnResults(). Later calls are no-ops.
func (m *Mocha) ReturnResults() {
	m.finish("")
}

// finish reports the terminal result exactly once.
func (m *Mocha) finish(errText string) {
	if !m.returned.CompareAndSwap(false, true) {
		return
	}
	if m.spawnID == 0 && m.home == m.rt.node.Site() {
		// The initiating local bag has no remote waiter.
		return
	}
	msg := &wire.TaskResult{
		SpawnID: m.spawnID,
		Site:    m.rt.node.Site(),
		Result:  m.Result.Encode(),
		Err:     errText,
	}
	if err := m.sendHome(msg); err != nil {
		m.rt.node.Log().Logf("runtime", "result return failed: %v", err)
	}
}

// Fail reports a terminal error for the task.
func (m *Mocha) Fail(err error) {
	text := "task failed"
	if err != nil {
		text = err.Error()
	}
	m.finish(text)
}

// Spawn recursively spawns another wide-area thread, when permitted.
func (m *Mocha) Spawn(ctx context.Context, site wire.SiteID, class string, params *Params) (*ResultHandle, error) {
	if !m.perms.AllowSpawn {
		return nil, fmt.Errorf("%w: spawn", ErrPermission)
	}
	return m.rt.Spawn(ctx, site, class, params)
}

// SpawnAny recursively spawns on any available site.
func (m *Mocha) SpawnAny(ctx context.Context, class string, params *Params) (*ResultHandle, error) {
	if !m.perms.AllowSpawn {
		return nil, fmt.Errorf("%w: spawn", ErrPermission)
	}
	return m.rt.SpawnAny(ctx, class, params)
}

// CreateReplica creates a shared object, when permitted.
func (m *Mocha) CreateReplica(name string, content *marshal.Content, copies int) (*core.Replica, error) {
	if !m.perms.AllowReplicas {
		return nil, fmt.Errorf("%w: create replica", ErrPermission)
	}
	return m.rt.node.CreateReplica(name, content, copies)
}

// AttachReplica obtains a copy of an existing shared object, when
// permitted.
func (m *Mocha) AttachReplica(name string, content *marshal.Content) (*core.Replica, error) {
	if !m.perms.AllowReplicas {
		return nil, fmt.Errorf("%w: attach replica", ErrPermission)
	}
	return m.rt.node.AttachReplica(name, content)
}

// ReplicaLock builds this task's view of a lock.
func (m *Mocha) ReplicaLock(id wire.LockID) *core.ReplicaLock {
	return m.handle.ReplicaLock(id)
}

// LoadClass demand-pulls a class image from the home repository, caching
// it at this server: "demand pulling of new application code object
// classes as they are encountered during execution".
func (m *Mocha) LoadClass(ctx context.Context, name string) ([]byte, error) {
	if !m.perms.AllowCodeLoad {
		return nil, fmt.Errorf("%w: load class", ErrPermission)
	}
	m.rt.mu.Lock()
	if img, ok := m.rt.cache[name]; ok {
		m.rt.mu.Unlock()
		m.rt.node.Log().Logf("runtime", "class %q served from cache", name)
		return img.Code, nil
	}
	m.rt.mu.Unlock()

	// Local repository first (we may be the home).
	if img, ok := m.rt.cfg.Repo.Get(name); ok {
		m.rt.mu.Lock()
		m.rt.cache[name] = img
		m.rt.mu.Unlock()
		return img.Code, nil
	}

	reqID := m.rt.nextSpawn.Add(1)
	ch := make(chan *wire.CodeReply, 1)
	m.rt.mu.Lock()
	m.rt.codeReplies[reqID] = ch
	m.rt.mu.Unlock()
	defer func() {
		m.rt.mu.Lock()
		delete(m.rt.codeReplies, reqID)
		m.rt.mu.Unlock()
	}()

	req := &wire.CodeRequest{SpawnID: reqID, Site: m.rt.node.Site(), ClassName: name}
	if err := m.sendHome(req); err != nil {
		return nil, fmt.Errorf("runtime: request class %q: %w", name, err)
	}
	select {
	case reply := <-ch:
		if !reply.Found {
			return nil, fmt.Errorf("%w: %q not in home repository", ErrUnknownClass, name)
		}
		img := NewClassImage(name, reply.Image)
		m.rt.mu.Lock()
		m.rt.cache[name] = img
		m.rt.mu.Unlock()
		m.rt.node.Log().Logf("runtime", "class %q demand-pulled (%d bytes)", name, len(reply.Image))
		return reply.Image, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("runtime: awaiting class %q: %w", name, ctx.Err())
	}
}
