package runtime

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mocha/internal/core"
	"mocha/internal/eventlog"
	"mocha/internal/marshal"
	"mocha/internal/mnet"
	"mocha/internal/netsim"
	"mocha/internal/transport"
	"mocha/internal/wire"
)

// syncWriter collects home-console output.
type syncWriter struct {
	mu sync.Mutex
	sb strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.String()
}

// testDeployment is an in-process cluster with runtimes on every site.
type testDeployment struct {
	runtimes map[wire.SiteID]*Runtime
	out      *syncWriter
}

// newDeployment builds n sites sharing one registry and repo.
func newDeployment(t *testing.T, n int, reg *Registry, repo *CodeRepository, maxServers int) *testDeployment {
	t.Helper()
	seed := netsim.SeedFromEnv(23)
	t.Logf("network seed %d (set %s to replay)", seed, netsim.SeedEnv)
	sn := transport.NewSimNetwork(netsim.Config{Profile: netsim.Perfect(), Seed: seed})
	t.Cleanup(func() { _ = sn.Close() })

	directory := make(map[wire.SiteID]string, n)
	stacks := make(map[wire.SiteID]*transport.SimStack, n)
	for i := 1; i <= n; i++ {
		site := wire.SiteID(i)
		stack, err := sn.NewStack(netsim.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		stacks[site] = stack
		directory[site] = stack.Datagram().LocalAddr()
	}

	d := &testDeployment{runtimes: make(map[wire.SiteID]*Runtime), out: &syncWriter{}}
	for i := 1; i <= n; i++ {
		site := wire.SiteID(i)
		ep := mnet.NewEndpoint(stacks[site].Datagram(), mnet.Config{RTO: 25 * time.Millisecond, MaxRetries: 4})
		node, err := core.NewNode(core.Config{
			Site:           site,
			Endpoint:       ep,
			Stack:          stacks[site],
			Directory:      directory,
			IsHome:         site == wire.HomeSite,
			RequestTimeout: 2 * time.Second,
			Log:            eventlog.New(4096),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = node.Close() })
		rt, err := New(node, Config{
			Registry:        reg,
			Repo:            repo,
			MaxServers:      maxServers,
			Output:          d.out,
			TaskPermissions: AllPermissions(),
		})
		if err != nil {
			t.Fatal(err)
		}
		d.runtimes[site] = rt
	}
	return d
}

func TestSpawnHello(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister("Myhello", func() Task {
		return TaskFunc(func(m *Mocha) {
			start, err := m.Parameter.GetDouble("start")
			if err != nil {
				m.MochaPrintStackTrace(err)
				m.Fail(err)
				return
			}
			sum := start + 1
			m.MochaPrintln(fmt.Sprintf("Returning as a return value %v", sum))
			m.Result.AddDouble("returnvalue", sum)
			m.ReturnResults()
		})
	})
	repo := NewCodeRepository()
	repo.Add("Myhello", []byte("class Myhello bytecode"))
	d := newDeployment(t, 3, reg, repo, 4)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	p := NewParams()
	p.AddDouble("start", 41)
	rh, err := d.runtimes[1].Spawn(ctx, 2, "Myhello", p)
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	res, err := rh.Wait(ctx)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	got, err := res.GetDouble("returnvalue")
	if err != nil || got != 42 {
		t.Fatalf("returnvalue = %v (%v), want 42", got, err)
	}
	// Remote println must have reached the home console.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(d.out.String(), "Returning as a return value 42") {
		if time.Now().After(deadline) {
			t.Fatalf("remote print missing; console: %q", d.out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSpawnUnknownClass(t *testing.T) {
	d := newDeployment(t, 2, NewRegistry(), NewCodeRepository(), 4)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := d.runtimes[1].Spawn(ctx, 2, "Nonesuch", nil)
	if !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("err = %v, want ErrUnknownClass", err)
	}
}

func TestSpawnAnySkipsFullSites(t *testing.T) {
	release := make(chan struct{})
	reg := NewRegistry()
	reg.MustRegister("Blocker", func() Task {
		return TaskFunc(func(m *Mocha) {
			<-release
			m.ReturnResults()
		})
	})
	reg.MustRegister("Quick", func() Task {
		return TaskFunc(func(m *Mocha) {
			m.Result.AddInt("site", int64(m.Site()))
			m.ReturnResults()
		})
	})
	d := newDeployment(t, 3, reg, NewCodeRepository(), 1)
	defer close(release)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	// Fill site 2's only server.
	if _, err := d.runtimes[1].Spawn(ctx, 2, "Blocker", nil); err != nil {
		t.Fatal(err)
	}
	// Give the blocker a moment to occupy its slot.
	time.Sleep(50 * time.Millisecond)

	rh, err := d.runtimes[1].SpawnAny(ctx, "Quick", nil)
	if err != nil {
		t.Fatalf("SpawnAny: %v", err)
	}
	res, err := rh.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	site, _ := res.GetInt("site")
	if site != 3 {
		t.Fatalf("task ran at site %d, want 3 (site 2 was full)", site)
	}
}

func TestSpawnDirectToFullSite(t *testing.T) {
	release := make(chan struct{})
	reg := NewRegistry()
	reg.MustRegister("Blocker", func() Task {
		return TaskFunc(func(m *Mocha) {
			<-release
			m.ReturnResults()
		})
	})
	d := newDeployment(t, 2, reg, NewCodeRepository(), 1)
	defer close(release)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := d.runtimes[1].Spawn(ctx, 2, "Blocker", nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	_, err := d.runtimes[1].Spawn(ctx, 2, "Blocker", nil)
	if !errors.Is(err, ErrNoServer) {
		t.Fatalf("err = %v, want ErrNoServer", err)
	}
}

func TestPanicBecomesErrorAndStackDump(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister("Crasher", func() Task {
		return TaskFunc(func(m *Mocha) {
			panic("deliberate test panic")
		})
	})
	d := newDeployment(t, 2, reg, NewCodeRepository(), 4)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	rh, err := d.runtimes[1].Spawn(ctx, 2, "Crasher", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rh.Wait(ctx); err == nil || !strings.Contains(err.Error(), "deliberate test panic") {
		t.Fatalf("wait err = %v, want panic text", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(d.out.String(), "stack dump") {
		if time.Now().After(deadline) {
			t.Fatal("stack dump never reached home console")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRecursiveSpawn(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister("Leaf", func() Task {
		return TaskFunc(func(m *Mocha) {
			m.Result.AddInt("v", 7)
			m.ReturnResults()
		})
	})
	reg.MustRegister("Parent", func() Task {
		return TaskFunc(func(m *Mocha) {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			rh, err := m.Spawn(ctx, 3, "Leaf", nil)
			if err != nil {
				m.Fail(err)
				return
			}
			res, err := rh.Wait(ctx)
			if err != nil {
				m.Fail(err)
				return
			}
			v, _ := res.GetInt("v")
			m.Result.AddInt("forwarded", v+1)
			m.ReturnResults()
		})
	})
	d := newDeployment(t, 3, reg, NewCodeRepository(), 4)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	rh, err := d.runtimes[1].Spawn(ctx, 2, "Parent", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rh.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.GetInt("forwarded"); v != 8 {
		t.Fatalf("forwarded = %d, want 8", v)
	}
}

func TestDemandPullAndCache(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister("Loader", func() Task {
		return TaskFunc(func(m *Mocha) {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			// First pull goes to the home repository.
			code, err := m.LoadClass(ctx, "Helper")
			if err != nil {
				m.Fail(err)
				return
			}
			// Second pull must come from the local cache.
			code2, err := m.LoadClass(ctx, "Helper")
			if err != nil {
				m.Fail(err)
				return
			}
			m.Result.AddBytes("code", code)
			m.Result.AddBool("same", string(code) == string(code2))
			m.ReturnResults()
		})
	})
	repo := NewCodeRepository()
	repo.Add("Helper", []byte("helper bytecode v1"))
	d := newDeployment(t, 2, reg, repo, 4)
	// Only the home runtime should own the repository in a real
	// deployment; the shared repo here still exercises the wire path
	// because LoadClass at site 2 checks its cache, then its local repo —
	// so make site 2's repo empty.
	d.runtimes[2].cfg.Repo = NewCodeRepository()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	rh, err := d.runtimes[1].Spawn(ctx, 2, "Loader", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rh.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	code, _ := res.GetBytes("code")
	if string(code) != "helper bytecode v1" {
		t.Fatalf("pulled code = %q", code)
	}
	if same, _ := res.GetBool("same"); !same {
		t.Fatal("cache returned different bytes")
	}
	if d.runtimes[2].Node().Log().CountCategory("runtime") == 0 {
		t.Fatal("no runtime events logged")
	}
}

func TestLoadClassMissing(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister("Loader", func() Task {
		return TaskFunc(func(m *Mocha) {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_, err := m.LoadClass(ctx, "Ghost")
			if err == nil {
				m.Fail(errors.New("ghost class loaded"))
				return
			}
			m.Result.AddBool("failed", true)
			m.ReturnResults()
		})
	})
	d := newDeployment(t, 2, reg, NewCodeRepository(), 4)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	rh, err := d.runtimes[1].Spawn(ctx, 2, "Loader", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rh.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if failed, _ := res.GetBool("failed"); !failed {
		t.Fatal("expected missing-class failure")
	}
}

func TestPermissionsEnforced(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister("Restricted", func() Task {
		return TaskFunc(func(m *Mocha) {
			ctx := context.Background()
			if _, err := m.Spawn(ctx, 1, "Restricted", nil); !errors.Is(err, ErrPermission) {
				m.Fail(fmt.Errorf("spawn allowed: %v", err))
				return
			}
			if _, err := m.CreateReplica("x", marshal.Ints(nil), 1); !errors.Is(err, ErrPermission) {
				m.Fail(fmt.Errorf("replica allowed: %v", err))
				return
			}
			if _, err := m.LoadClass(ctx, "y"); !errors.Is(err, ErrPermission) {
				m.Fail(fmt.Errorf("code load allowed: %v", err))
				return
			}
			m.Result.AddBool("sandboxed", true)
			m.ReturnResults()
		})
	})
	d := newDeployment(t, 2, reg, NewCodeRepository(), 4)
	d.runtimes[2].cfg.TaskPermissions = Permissions{} // deny everything

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	rh, err := d.runtimes[1].Spawn(ctx, 2, "Restricted", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rh.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := res.GetBool("sandboxed"); !ok {
		t.Fatal("permissions not enforced")
	}
}

func TestTasksShareReplicasAcrossSites(t *testing.T) {
	// End-to-end: spawned tasks cooperate through the shared-object layer.
	reg := NewRegistry()
	reg.MustRegister("Adder", func() Task {
		return TaskFunc(func(m *Mocha) {
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			r, err := m.AttachReplica("acc", marshal.Ints(nil))
			if err != nil {
				m.Fail(err)
				return
			}
			rl := m.ReplicaLock(40)
			if err := rl.Associate(ctx, r); err != nil {
				m.Fail(err)
				return
			}
			n, _ := m.Parameter.GetInt("n")
			for i := int64(0); i < n; i++ {
				if err := rl.Lock(ctx); err != nil {
					m.Fail(err)
					return
				}
				r.Content().IntsData()[0]++
				if err := rl.Unlock(ctx); err != nil {
					m.Fail(err)
					return
				}
			}
			m.ReturnResults()
		})
	})
	d := newDeployment(t, 3, reg, NewCodeRepository(), 4)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	home := d.runtimes[1].LocalBag("main")
	acc, err := home.CreateReplica("acc", marshal.Ints([]int32{0}), 3)
	if err != nil {
		t.Fatal(err)
	}
	rl := home.ReplicaLock(40)
	if err := rl.Associate(ctx, acc); err != nil {
		t.Fatal(err)
	}

	p := NewParams()
	p.AddInt("n", 5)
	var handles []*ResultHandle
	for _, site := range []wire.SiteID{2, 3} {
		rh, err := d.runtimes[1].Spawn(ctx, site, "Adder", p)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, rh)
	}
	for _, rh := range handles {
		if _, err := rh.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := rl.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rl.Unlock(ctx) }()
	if got := acc.Content().IntsData()[0]; got != 10 {
		t.Fatalf("accumulator = %d, want 10", got)
	}
}

func TestParamsRoundTrip(t *testing.T) {
	p := NewParams()
	p.AddInt("i", -5)
	p.AddDouble("d", 3.5)
	p.AddString("s", "hello")
	p.AddBytes("b", []byte{1, 2, 3})
	p.AddBool("t", true)
	p.AddBool("f", false)

	q, err := DecodeParams(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if v, err := q.GetInt("i"); err != nil || v != -5 {
		t.Fatalf("i = %d, %v", v, err)
	}
	if v, err := q.GetDouble("d"); err != nil || v != 3.5 {
		t.Fatalf("d = %v, %v", v, err)
	}
	if v, err := q.GetString("s"); err != nil || v != "hello" {
		t.Fatalf("s = %q, %v", v, err)
	}
	if v, err := q.GetBytes("b"); err != nil || len(v) != 3 || v[2] != 3 {
		t.Fatalf("b = %v, %v", v, err)
	}
	if v, err := q.GetBool("t"); err != nil || !v {
		t.Fatalf("t = %v, %v", v, err)
	}
	if v, err := q.GetBool("f"); err != nil || v {
		t.Fatalf("f = %v, %v", v, err)
	}
	if got := q.Keys(); len(got) != 6 || got[0] != "b" {
		t.Fatalf("keys = %v", got)
	}
	if q.Len() != 6 {
		t.Fatalf("len = %d", q.Len())
	}
}

func TestParamsErrors(t *testing.T) {
	p := NewParams()
	p.AddInt("i", 1)
	var noParam *ErrNoParam
	if _, err := p.GetInt("missing"); !errors.As(err, &noParam) {
		t.Fatalf("missing key err = %v", err)
	}
	var badType *ErrParamType
	if _, err := p.GetDouble("i"); !errors.As(err, &badType) {
		t.Fatalf("wrong type err = %v", err)
	}
	if _, err := DecodeParams([]byte{0, 1, 0, 1, 'x', 99}); err == nil {
		t.Fatal("bad kind decoded")
	}
	if p2, err := DecodeParams(nil); err != nil || p2.Len() != 0 {
		t.Fatalf("empty decode: %v %d", err, p2.Len())
	}
}

func TestRegistryDuplicate(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("A", func() Task { return TaskFunc(func(*Mocha) {}) }); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("A", func() Task { return TaskFunc(func(*Mocha) {}) }); err == nil {
		t.Fatal("duplicate registration allowed")
	}
	if err := reg.Register("", nil); err == nil {
		t.Fatal("empty registration allowed")
	}
	if _, ok := reg.New("B"); ok {
		t.Fatal("phantom class instantiated")
	}
	if got := reg.Names(); len(got) != 1 || got[0] != "A" {
		t.Fatalf("names = %v", got)
	}
}

func TestSiteManagerLimits(t *testing.T) {
	m := NewSiteManager(2)
	if !m.Acquire() || !m.Acquire() {
		t.Fatal("slots unavailable")
	}
	if m.Acquire() {
		t.Fatal("over-allocated")
	}
	if m.Running() != 2 {
		t.Fatalf("running = %d", m.Running())
	}
	m.Release()
	if !m.Acquire() {
		t.Fatal("slot not released")
	}
	if m.TotalStarted() != 3 {
		t.Fatalf("total = %d", m.TotalStarted())
	}
}

func TestEventForwarding(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister("Noisy", func() Task {
		return TaskFunc(func(m *Mocha) {
			m.Node().Log().Logf("app", "noisy task ran at site %d", m.Site())
			m.ReturnResults()
		})
	})
	d := newDeployment(t, 2, reg, NewCodeRepository(), 4)
	// Rebuild site 2's forwarding by enabling the option after the fact:
	// the deployment helper does not set ForwardEvents, so install it the
	// way New would.
	d.runtimes[2].cfg.ForwardEvents = true
	d.runtimes[2].startEventForwarder()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	rh, err := d.runtimes[1].Spawn(ctx, 2, "Noisy", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rh.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for d.runtimes[1].Node().Log().CountCategory("remote-app") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("forwarded event never reached the home collector")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestJoinMembership(t *testing.T) {
	d := newDeployment(t, 3, NewRegistry(), NewCodeRepository(), 4)
	deadline := time.Now().Add(10 * time.Second)
	for {
		members := d.runtimes[1].Members()
		if len(members) == 2 && members[2] != "" && members[3] != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("members = %v, want sites 2 and 3", members)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Non-home runtimes track no members.
	if got := d.runtimes[2].Members(); len(got) != 0 {
		t.Fatalf("worker tracks members: %v", got)
	}
}
