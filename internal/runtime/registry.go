package runtime

import (
	"crypto/sha256"
	"fmt"
	"sync"
)

// Task is the MochaTask interface: "Mocha threads may be derived from any
// Java class that implements the MochaTask interface." The runtime invokes
// MochaStart with the travel bag on a fresh goroutine at the remote site.
type Task interface {
	MochaStart(m *Mocha)
}

// TaskFunc adapts a function to the Task interface.
type TaskFunc func(m *Mocha)

// MochaStart implements Task.
func (f TaskFunc) MochaStart(m *Mocha) { f(m) }

// Factory instantiates a task.
type Factory func() Task

// Registry maps class names to task factories.
//
// Substitution note (see DESIGN.md §3): Java Mocha ships bytecode and
// links it dynamically; Go cannot load shipped machine code, so the
// executable behaviour of a class must be registered in the binary. The
// shipping protocol — the initial push of the spawned class image and the
// demand pulls of further classes — still runs in full over the wire, with
// class images as named blobs carried by Spawn/CodeRequest/CodeReply and a
// per-server cache.
type Registry struct {
	mu sync.Mutex
	m  map[string]Factory
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]Factory)}
}

// Register binds a class name to a factory.
func (r *Registry) Register(name string, f Factory) error {
	if name == "" || f == nil {
		return fmt.Errorf("runtime: register needs a name and factory")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[name]; dup {
		return fmt.Errorf("runtime: class %q already registered", name)
	}
	r.m[name] = f
	return nil
}

// MustRegister panics on error; for use in example main set-up code.
func (r *Registry) MustRegister(name string, f Factory) {
	if err := r.Register(name, f); err != nil {
		panic(err)
	}
}

// New instantiates a registered class.
func (r *Registry) New(name string) (Task, bool) {
	r.mu.Lock()
	f, ok := r.m[name]
	r.mu.Unlock()
	if !ok {
		return nil, false
	}
	return f(), true
}

// Names lists registered classes.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.m))
	for n := range r.m {
		out = append(out, n)
	}
	return out
}

// ClassImage is a shippable unit of application code: a named blob plus
// its digest, playing the role of a Java class file.
type ClassImage struct {
	Name   string
	Code   []byte
	Digest [sha256.Size]byte
}

// NewClassImage builds an image over the given code bytes.
func NewClassImage(name string, code []byte) ClassImage {
	return ClassImage{Name: name, Code: code, Digest: sha256.Sum256(code)}
}

// CodeRepository is the home site's store of shippable class images, the
// source for the initial push at spawn time and for demand pulls during
// execution.
type CodeRepository struct {
	mu sync.Mutex
	m  map[string]ClassImage
}

// NewCodeRepository creates an empty repository.
func NewCodeRepository() *CodeRepository {
	return &CodeRepository{m: make(map[string]ClassImage)}
}

// Add stores an image for a class name.
func (c *CodeRepository) Add(name string, code []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[name] = NewClassImage(name, code)
}

// Get fetches an image.
func (c *CodeRepository) Get(name string) (ClassImage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	img, ok := c.m[name]
	return img, ok
}

// SiteManager allocates Mocha Servers: it "is responsible for controlling
// the number of true processes on the workstation that are allocated for
// use by remote tasks". Here a server slot is a bounded concurrency token;
// a site that is out of servers refuses the spawn, and the spawner moves
// on to the next host in the host file.
type SiteManager struct {
	mu      sync.Mutex
	max     int
	running int
	total   int64
}

// NewSiteManager creates a manager with the given server limit (default 4
// when max <= 0).
func NewSiteManager(max int) *SiteManager {
	if max <= 0 {
		max = 4
	}
	return &SiteManager{max: max}
}

// Acquire claims a server slot, reporting false when the site is full.
func (s *SiteManager) Acquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running >= s.max {
		return false
	}
	s.running++
	s.total++
	return true
}

// Release frees a server slot.
func (s *SiteManager) Release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running > 0 {
		s.running--
	}
}

// Running reports currently active tasks.
func (s *SiteManager) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// TotalStarted reports tasks ever started here.
func (s *SiteManager) TotalStarted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Permissions is the per-task capability set enforced by the travel bag —
// the secure-execution piece of the wide-area runtime. Remote code runs
// only with the rights the hosting site grants it.
type Permissions struct {
	// AllowSpawn lets the task recursively spawn further tasks.
	AllowSpawn bool
	// AllowReplicas lets the task create or attach shared objects.
	AllowReplicas bool
	// AllowCodeLoad lets the task demand-pull further class images.
	AllowCodeLoad bool
}

// AllPermissions grants everything (the default for trusted clusters).
func AllPermissions() Permissions {
	return Permissions{AllowSpawn: true, AllowReplicas: true, AllowCodeLoad: true}
}
