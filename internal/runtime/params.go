package runtime

import (
	"fmt"
	"sort"
	"sync"

	"mocha/internal/wire"
)

// Params is the Parameter/Result object of the travel bag: a typed
// key-value bag "for organizing the parameters that will eventually be
// sent to a remotely spawned thread" and for carrying results back. It is
// safe for concurrent use.
type Params struct {
	mu sync.Mutex
	m  map[string]paramValue
}

type paramKind uint8

const (
	kindInt paramKind = iota + 1
	kindDouble
	kindString
	kindBytes
	kindBool
)

type paramValue struct {
	kind paramKind
	i    int64
	f    float64
	s    string
	b    []byte
}

// NewParams creates an empty parameter bag.
func NewParams() *Params {
	return &Params{m: make(map[string]paramValue)}
}

// ErrNoParam reports a missing key.
type ErrNoParam struct {
	Key string
}

// Error implements error.
func (e *ErrNoParam) Error() string { return fmt.Sprintf("runtime: no parameter %q", e.Key) }

// ErrParamType reports a key accessed with the wrong type, the analogue of
// the paper's MochaParameterException.
type ErrParamType struct {
	Key  string
	Want string
}

// Error implements error.
func (e *ErrParamType) Error() string {
	return fmt.Sprintf("runtime: parameter %q is not a %s", e.Key, e.Want)
}

// AddInt stores an integer (the paper's p.add("param1", 5)).
func (p *Params) AddInt(key string, v int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.m[key] = paramValue{kind: kindInt, i: v}
}

// AddDouble stores a float64.
func (p *Params) AddDouble(key string, v float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.m[key] = paramValue{kind: kindDouble, f: v}
}

// AddString stores a string.
func (p *Params) AddString(key, v string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.m[key] = paramValue{kind: kindString, s: v}
}

// AddBytes stores a byte slice (copied).
func (p *Params) AddBytes(key string, v []byte) {
	cp := make([]byte, len(v))
	copy(cp, v)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.m[key] = paramValue{kind: kindBytes, b: cp}
}

// AddBool stores a bool.
func (p *Params) AddBool(key string, v bool) {
	var i int64
	if v {
		i = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.m[key] = paramValue{kind: kindBool, i: i}
}

func (p *Params) get(key string, want paramKind, wantName string) (paramValue, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.m[key]
	if !ok {
		return paramValue{}, &ErrNoParam{Key: key}
	}
	if v.kind != want {
		return paramValue{}, &ErrParamType{Key: key, Want: wantName}
	}
	return v, nil
}

// GetInt retrieves an integer.
func (p *Params) GetInt(key string) (int64, error) {
	v, err := p.get(key, kindInt, "int")
	return v.i, err
}

// GetDouble retrieves a float64 (the paper's getdouble).
func (p *Params) GetDouble(key string) (float64, error) {
	v, err := p.get(key, kindDouble, "double")
	return v.f, err
}

// GetString retrieves a string.
func (p *Params) GetString(key string) (string, error) {
	v, err := p.get(key, kindString, "string")
	return v.s, err
}

// GetBytes retrieves a byte slice (caller owns the copy).
func (p *Params) GetBytes(key string) ([]byte, error) {
	v, err := p.get(key, kindBytes, "bytes")
	if err != nil {
		return nil, err
	}
	cp := make([]byte, len(v.b))
	copy(cp, v.b)
	return cp, nil
}

// GetBool retrieves a bool.
func (p *Params) GetBool(key string) (bool, error) {
	v, err := p.get(key, kindBool, "bool")
	return v.i != 0, err
}

// Keys lists stored keys in sorted order.
func (p *Params) Keys() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.m))
	for k := range p.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of stored entries.
func (p *Params) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.m)
}

// Encode serializes the bag for the wire.
func (p *Params) Encode() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	keys := make([]string, 0, len(p.m))
	for k := range p.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	w := wire.NewWriter(64)
	w.U16(uint16(len(keys)))
	for _, k := range keys {
		v := p.m[k]
		w.String16(k)
		w.U8(uint8(v.kind))
		switch v.kind {
		case kindInt, kindBool:
			w.U64(uint64(v.i))
		case kindDouble:
			w.F64(v.f)
		case kindString:
			w.String16(v.s)
		case kindBytes:
			w.Bytes32(v.b)
		}
	}
	return w.Bytes()
}

// DecodeParams parses a bag encoded by Encode. A nil or empty buffer yields
// an empty bag.
func DecodeParams(b []byte) (*Params, error) {
	p := NewParams()
	if len(b) == 0 {
		return p, nil
	}
	r := wire.NewReader(b)
	n := int(r.U16())
	for i := 0; i < n; i++ {
		key := r.String16()
		kind := paramKind(r.U8())
		var v paramValue
		v.kind = kind
		switch kind {
		case kindInt, kindBool:
			v.i = int64(r.U64())
		case kindDouble:
			v.f = r.F64()
		case kindString:
			v.s = r.String16()
		case kindBytes:
			v.b = r.Bytes32()
		default:
			return nil, fmt.Errorf("runtime: bad parameter kind %d for %q", kind, key)
		}
		p.m[key] = v
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("runtime: decode params: %w", err)
	}
	return p, nil
}
