// Package runtime is Mocha's wide-area computing infrastructure: site
// managers and Mocha Servers, remote thread spawning with code shipping
// ("an initial push of application code followed by demand pulling of new
// application code object classes"), the travel-bag Mocha object handed to
// every remotely evaluated task, remote printing and stack dumps, and
// capability-based execution permissions. It layers on package core for
// state sharing and on package mnet for communication.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mocha/internal/core"
	"mocha/internal/eventlog"
	"mocha/internal/mnet"
	"mocha/internal/obs"
	"mocha/internal/wire"
)

// Config parameterizes a site's runtime.
type Config struct {
	// Registry holds the task factories this binary can execute.
	Registry *Registry
	// Repo is the code repository (meaningful at the home site, which
	// answers demand pulls).
	Repo *CodeRepository
	// MaxServers bounds concurrently executing remote tasks at this site.
	MaxServers int
	// Output receives remote println/stack-dump traffic at the home site.
	// Defaults to io.Discard.
	Output io.Writer
	// TaskPermissions is granted to tasks hosted at this site.
	TaskPermissions Permissions
	// ForwardEvents ships this site's event log to the home site's
	// collector — the paper's "basic debugging and event logging
	// facilities that provide insight into execution of code at remote
	// locations". Best effort: events are dropped rather than ever
	// blocking the logging site.
	ForwardEvents bool
}

// Runtime is one site's wide-area runtime.
type Runtime struct {
	node *core.Node
	cfg  Config
	port *mnet.Port
	mgr  *SiteManager

	nextSpawn atomic.Uint64

	mu          sync.Mutex
	acks        map[uint64]chan *wire.SpawnAck
	results     map[uint64]chan *wire.TaskResult
	codeReplies map[uint64]chan *wire.CodeReply
	cache       map[string]ClassImage // demand-pull cache
	members     map[wire.SiteID]memberInfo
}

// memberInfo records one joined site at the home.
type memberInfo struct {
	Name       string
	DaemonAddr string
	JoinedAt   int64
}

// Runtime errors.
var (
	// ErrNoServer reports that the target site refused the spawn because
	// all its Mocha Servers are busy.
	ErrNoServer = errors.New("runtime: no server available at target site")
	// ErrUnknownClass reports a spawn of a class the target cannot link.
	ErrUnknownClass = errors.New("runtime: unknown task class")
	// ErrPermission reports a travel-bag operation the task lacks rights
	// for.
	ErrPermission = errors.New("runtime: operation not permitted")
)

// New starts the runtime on a node.
func New(node *core.Node, cfg Config) (*Runtime, error) {
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry()
	}
	if cfg.Repo == nil {
		cfg.Repo = NewCodeRepository()
	}
	if cfg.Output == nil {
		cfg.Output = io.Discard
	}
	port, err := node.Endpoint().OpenPort(core.PortRuntime)
	if err != nil {
		return nil, fmt.Errorf("runtime: open port: %w", err)
	}
	rt := &Runtime{
		node:        node,
		cfg:         cfg,
		port:        port,
		mgr:         NewSiteManager(cfg.MaxServers),
		acks:        make(map[uint64]chan *wire.SpawnAck),
		results:     make(map[uint64]chan *wire.TaskResult),
		codeReplies: make(map[uint64]chan *wire.CodeReply),
		cache:       make(map[string]ClassImage),
		members:     make(map[wire.SiteID]memberInfo),
	}
	port.SetHandler(rt.handle)
	if cfg.ForwardEvents && node.Site() != wire.HomeSite {
		rt.startEventForwarder()
	}
	if node.Site() != wire.HomeSite {
		go rt.joinHome()
	}
	return rt, nil
}

// joinHome announces this site manager to the home site, retrying a few
// times because workers commonly start before the home does. On ack the
// site confirms (or updates) its view of the synchronization thread.
func (rt *Runtime) joinHome() {
	msg := &wire.Join{
		Site:       rt.node.Site(),
		Name:       fmt.Sprintf("site%d", rt.node.Site()),
		DaemonAddr: rt.node.Endpoint().PortAddr(core.PortDaemon),
	}
	addr, err := rt.node.RuntimeAddr(wire.HomeSite)
	if err != nil {
		return
	}
	blob := wire.Marshal(msg)
	for attempt := 0; attempt < 30; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), rt.node.RequestTimeout())
		err := rt.port.Send(ctx, addr, blob)
		cancel()
		if err == nil {
			return
		}
		select {
		case <-rt.node.Done():
			return
		case <-timeAfter(rt.node.RequestTimeout()):
		}
	}
	rt.node.Log().Logf("runtime", "join to home never acknowledged")
}

// timeAfter is a seam for the join retry pacing.
var timeAfter = func(d time.Duration) <-chan time.Time { return time.After(d) }

// Members reports the sites that have joined this (home) runtime.
func (rt *Runtime) Members() map[wire.SiteID]string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make(map[wire.SiteID]string, len(rt.members))
	for id, m := range rt.members {
		out[id] = m.Name
	}
	return out
}

// startEventForwarder installs a log sink that ships events to the home
// collector from a dedicated goroutine, dropping when the queue is full.
func (rt *Runtime) startEventForwarder() {
	queue := make(chan *wire.Event, 256)
	var seq atomic.Uint64
	rt.node.Log().SetSink(func(e eventlog.Event) {
		if strings.HasPrefix(e.Category, "remote-") {
			return
		}
		msg := &wire.Event{
			Site:      rt.node.Site(),
			Seq:       seq.Add(1),
			UnixNanos: e.Time.UnixNano(),
			Category:  e.Category,
			Text:      e.Text,
			Msg:       e.Msg,
			Fields:    e.Fields,
		}
		select {
		case queue <- msg:
		default: // never block or backpressure the logging site
		}
	})
	go func() {
		addr, err := rt.node.RuntimeAddr(wire.HomeSite)
		if err != nil {
			return
		}
		for e := range queue {
			ctx, cancel := context.WithTimeout(context.Background(), rt.node.RequestTimeout())
			// Failures are dropped silently: logging a failed event send
			// would feed the forwarder its own output.
			_ = rt.port.Send(ctx, addr, wire.Marshal(e))
			cancel()
		}
	}()
}

// Node returns the underlying shared-object node.
func (rt *Runtime) Node() *core.Node { return rt.node }

// SiteManager returns the local server allocator.
func (rt *Runtime) SiteManager() *SiteManager { return rt.mgr }

// runtimeAddr resolves another site's runtime port.
func (rt *Runtime) runtimeAddr(site wire.SiteID) (string, error) {
	// Runtime traffic flows site-to-site on the shared directory.
	return rt.node.RuntimeAddr(site)
}

// handle processes runtime-port traffic.
func (rt *Runtime) handle(m mnet.Message) {
	p, err := wire.Unmarshal(m.Data)
	if err != nil {
		rt.node.Log().Logf("runtime", "bad message: %v", err)
		return
	}
	switch msg := p.(type) {
	case *wire.Spawn:
		rt.onSpawn(m.From, msg)
	case *wire.SpawnAck:
		rt.route(rt.acks, msg.SpawnID, msg)
	case *wire.TaskResult:
		rt.route(rt.results, msg.SpawnID, msg)
	case *wire.CodeRequest:
		rt.onCodeRequest(m.From, msg)
	case *wire.CodeReply:
		rt.route(rt.codeReplies, msg.SpawnID, msg)
	case *wire.Print:
		fmt.Fprintf(rt.cfg.Output, "[site%d #%d] %s\n", msg.Site, msg.SpawnID, msg.Text)
	case *wire.StackDump:
		fmt.Fprintf(rt.cfg.Output, "[site%d #%d] stack dump (%s):\n%s\n", msg.Site, msg.SpawnID, msg.Reason, msg.Stack)
	case *wire.Event:
		// Re-emit into the collector's typed stream: the structure
		// survives the hop instead of being flattened to text remotely.
		if log := rt.node.Log(); log.On() {
			fields := append([]obs.Field{obs.I("origin", int64(msg.Site))}, msg.Fields...)
			if msg.Msg == "" {
				log.Log("remote-"+msg.Category, msg.Text, fields[:1]...)
			} else {
				log.Log("remote-"+msg.Category, msg.Msg, fields...)
			}
		}
	case *wire.Join:
		rt.onJoin(m.From, msg)
	case *wire.JoinAck:
		if msg.OK {
			rt.node.Log().Logf("runtime", "joined home (sync at %s, epoch %d)", msg.SyncAddr, msg.Epoch)
		}
	default:
		rt.node.Log().Logf("runtime", "unhandled %s on runtime port", p.Kind())
	}
}

// route delivers a correlated reply to its waiter.
func (rt *Runtime) route(waiters any, id uint64, msg any) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	switch w := waiters.(type) {
	case map[uint64]chan *wire.SpawnAck:
		if ch, ok := w[id]; ok {
			select {
			case ch <- msg.(*wire.SpawnAck):
			default:
			}
		}
	case map[uint64]chan *wire.TaskResult:
		if ch, ok := w[id]; ok {
			select {
			case ch <- msg.(*wire.TaskResult):
			default:
			}
		}
	case map[uint64]chan *wire.CodeReply:
		if ch, ok := w[id]; ok {
			select {
			case ch <- msg.(*wire.CodeReply):
			default:
			}
		}
	}
}

// onSpawn services an incoming spawn request: allocate a server, link the
// class (caching the pushed image), acknowledge, and run the task.
func (rt *Runtime) onSpawn(replyTo string, msg *wire.Spawn) {
	nack := func(reason string) {
		ack := &wire.SpawnAck{SpawnID: msg.SpawnID, Site: rt.node.Site(), OK: false, Err: reason}
		rt.send(replyTo, ack)
	}
	if len(msg.ClassImage) > 0 {
		rt.mu.Lock()
		rt.cache[msg.ClassName] = NewClassImage(msg.ClassName, msg.ClassImage)
		rt.mu.Unlock()
	}
	task, ok := rt.cfg.Registry.New(msg.ClassName)
	if !ok {
		nack(fmt.Sprintf("class %q not linkable at site %d", msg.ClassName, rt.node.Site()))
		return
	}
	if !rt.mgr.Acquire() {
		nack("no server available")
		return
	}
	params, err := DecodeParams(msg.Params)
	if err != nil {
		rt.mgr.Release()
		nack(fmt.Sprintf("bad parameters: %v", err))
		return
	}
	ack := &wire.SpawnAck{SpawnID: msg.SpawnID, Site: rt.node.Site(), OK: true}
	rt.send(replyTo, ack)

	bag := &Mocha{
		rt:        rt,
		handle:    rt.node.NewHandle(msg.ClassName),
		spawnID:   msg.SpawnID,
		home:      msg.Home,
		class:     msg.ClassName,
		Parameter: params,
		Result:    NewParams(),
		perms:     rt.cfg.TaskPermissions,
	}
	go rt.runTask(task, bag)
}

// runTask executes one Mocha thread, converting panics into remote stack
// dumps and always reporting a terminal result home.
func (rt *Runtime) runTask(task Task, bag *Mocha) {
	defer rt.mgr.Release()
	defer func() {
		if r := recover(); r != nil {
			reason := fmt.Sprintf("panic: %v", r)
			bag.MochaPrintStackTrace(fmt.Errorf("%s", reason))
			bag.finish(reason)
			return
		}
		bag.finish("")
	}()
	rt.node.Log().Logf("runtime", "task %s #%d started", bag.class, bag.spawnID)
	task.MochaStart(bag)
}

// onJoin registers a site manager's membership announcement and tells it
// where the synchronization thread lives.
func (rt *Runtime) onJoin(replyTo string, msg *wire.Join) {
	if rt.node.Site() != wire.HomeSite {
		return
	}
	rt.mu.Lock()
	rt.members[msg.Site] = memberInfo{Name: msg.Name, DaemonAddr: msg.DaemonAddr}
	rt.mu.Unlock()
	rt.node.Log().Logf("runtime", "site %d (%s) joined", msg.Site, msg.Name)
	ack := &wire.JoinAck{
		Site:     msg.Site,
		OK:       true,
		SyncAddr: rt.node.SyncAddr(),
		Epoch:    rt.node.SyncEpoch(),
	}
	rt.send(replyTo, ack)
}

// onCodeRequest answers a demand pull from the code repository.
func (rt *Runtime) onCodeRequest(replyTo string, msg *wire.CodeRequest) {
	img, found := rt.cfg.Repo.Get(msg.ClassName)
	reply := &wire.CodeReply{
		SpawnID:   msg.SpawnID,
		ClassName: msg.ClassName,
		Found:     found,
		Image:     img.Code,
	}
	rt.send(replyTo, reply)
}

// send transmits a runtime message, logging failures.
func (rt *Runtime) send(to string, p wire.Payload) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.node.RequestTimeout())
	defer cancel()
	if err := rt.port.Send(ctx, to, wire.Marshal(p)); err != nil {
		rt.node.Log().Logf("runtime", "send %s to %s failed: %v", p.Kind(), to, err)
	}
}

// ResultHandle tracks a spawned task, the return value of spawn():
// `rh = mocha.spawn("Myhello", p)`.
type ResultHandle struct {
	rt      *Runtime
	spawnID uint64
	site    wire.SiteID
	class   string
	ch      chan *wire.TaskResult
}

// Site reports where the task runs.
func (rh *ResultHandle) Site() wire.SiteID { return rh.site }

// Wait blocks for the task's Result object. A task that ended with an
// error or panic yields that error.
func (rh *ResultHandle) Wait(ctx context.Context) (*Params, error) {
	select {
	case res := <-rh.ch:
		rh.rt.mu.Lock()
		delete(rh.rt.results, rh.spawnID)
		rh.rt.mu.Unlock()
		if res.Err != "" {
			return nil, fmt.Errorf("runtime: task %s at site %d: %s", rh.class, rh.site, res.Err)
		}
		return DecodeParams(res.Result)
	case <-ctx.Done():
		return nil, fmt.Errorf("runtime: awaiting result of %s: %w", rh.class, ctx.Err())
	}
}

// Spawn starts a task class at a specific site, pushing the class image
// when the home repository has one.
func (rt *Runtime) Spawn(ctx context.Context, site wire.SiteID, class string, params *Params) (*ResultHandle, error) {
	if params == nil {
		params = NewParams()
	}
	spawnID := rt.nextSpawn.Add(1)

	ackCh := make(chan *wire.SpawnAck, 1)
	resCh := make(chan *wire.TaskResult, 1)
	rt.mu.Lock()
	rt.acks[spawnID] = ackCh
	rt.results[spawnID] = resCh
	rt.mu.Unlock()
	cleanup := func() {
		rt.mu.Lock()
		delete(rt.acks, spawnID)
		delete(rt.results, spawnID)
		rt.mu.Unlock()
	}

	var image []byte
	if img, ok := rt.cfg.Repo.Get(class); ok {
		image = img.Code
	}
	msg := &wire.Spawn{
		SpawnID:    spawnID,
		Home:       rt.node.Site(),
		ClassName:  class,
		ClassImage: image,
		Params:     params.Encode(),
	}
	addr, err := rt.runtimeAddr(site)
	if err != nil {
		cleanup()
		return nil, err
	}
	if err := rt.port.Send(ctx, addr, wire.Marshal(msg)); err != nil {
		cleanup()
		return nil, fmt.Errorf("runtime: spawn %s at site %d: %w", class, site, err)
	}

	select {
	case ack := <-ackCh:
		rt.mu.Lock()
		delete(rt.acks, spawnID)
		rt.mu.Unlock()
		if !ack.OK {
			rt.mu.Lock()
			delete(rt.results, spawnID)
			rt.mu.Unlock()
			if ack.Err == "no server available" {
				return nil, fmt.Errorf("%w (site %d)", ErrNoServer, site)
			}
			return nil, fmt.Errorf("%w: %s", ErrUnknownClass, ack.Err)
		}
		return &ResultHandle{rt: rt, spawnID: spawnID, site: site, class: class, ch: resCh}, nil
	case <-ctx.Done():
		cleanup()
		return nil, fmt.Errorf("runtime: spawn %s at site %d: %w", class, site, ctx.Err())
	}
}

// SpawnAny starts a task on the first site in the host file with a free
// server, skipping the home site — the paper's spawn that picks "a list of
// potential sites at which remote threads may be spawned".
func (rt *Runtime) SpawnAny(ctx context.Context, class string, params *Params) (*ResultHandle, error) {
	var lastErr error
	for _, site := range rt.node.Sites() {
		if site == rt.node.Site() {
			continue
		}
		rh, err := rt.Spawn(ctx, site, class, params)
		if err == nil {
			return rh, nil
		}
		lastErr = err
		if !errors.Is(err, ErrNoServer) {
			return nil, err
		}
	}
	if lastErr == nil {
		lastErr = errors.New("runtime: no remote sites in host file")
	}
	return nil, lastErr
}

// LocalBag builds a travel bag for the initiating application thread at
// the home site, so the main program uses the same API as spawned tasks.
func (rt *Runtime) LocalBag(name string) *Mocha {
	return &Mocha{
		rt:        rt,
		handle:    rt.node.NewHandle(name),
		spawnID:   0,
		home:      rt.node.Site(),
		class:     name,
		Parameter: NewParams(),
		Result:    NewParams(),
		perms:     AllPermissions(),
	}
}
