// Package gen implements the MochaGen tool's code generation: given a Go
// struct, it emits a Replica wrapper with explicit, field-by-field
// marshaling — the paper's "custom subclass of Replica which contains the
// object the user desires to share as well as a new custom constructor and
// the appropriate serialization/unserialization methods". The generated
// code is the optimized alternative to the reflection-based
// TypedReplica[T]: it serializes exactly the declared fields with no
// framework overhead, the way "more experienced Java users are permitted
// to replace the code that the MochaGen tool generates ... with more
// optimized code".
package gen

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"strings"
	"text/template"
)

// Field is one marshalable struct field.
type Field struct {
	Name string
	Type string
}

// Model is the template input.
type Model struct {
	Package string
	Struct  string
	Wrapper string
	Fields  []Field
}

// supportedTypes lists the field types the generator can marshal.
var supportedTypes = map[string]bool{
	"bool": true, "int": true, "int32": true, "int64": true,
	"float64": true, "string": true,
	"[]byte": true, "[]int32": true, "[]float64": true,
}

// Generate parses Go source, finds the named struct, and returns a
// generated file declaring <Struct>Replica with MarshalMocha and
// UnmarshalMocha methods.
func Generate(src []byte, structName string) ([]byte, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "input.go", src, parser.SkipObjectResolution)
	if err != nil {
		return nil, fmt.Errorf("gen: parse: %w", err)
	}

	st, err := findStruct(file, structName)
	if err != nil {
		return nil, err
	}
	model := Model{
		Package: file.Name.Name,
		Struct:  structName,
		Wrapper: structName + "Replica",
	}
	for _, f := range st.Fields.List {
		typeName := typeString(f.Type)
		if !supportedTypes[typeName] {
			return nil, fmt.Errorf("gen: field type %q not supported (supported: bool, int, int32, int64, float64, string, []byte, []int32, []float64)", typeName)
		}
		for _, name := range f.Names {
			if !name.IsExported() {
				return nil, fmt.Errorf("gen: field %s must be exported", name.Name)
			}
			model.Fields = append(model.Fields, Field{Name: name.Name, Type: typeName})
		}
	}
	if len(model.Fields) == 0 {
		return nil, fmt.Errorf("gen: struct %s has no marshalable fields", structName)
	}

	var buf bytes.Buffer
	if err := tmpl.Execute(&buf, model); err != nil {
		return nil, fmt.Errorf("gen: render: %w", err)
	}
	out, err := format.Source(buf.Bytes())
	if err != nil {
		return nil, fmt.Errorf("gen: generated code does not compile: %w\n%s", err, buf.String())
	}
	return out, nil
}

// findStruct locates a struct type declaration by name.
func findStruct(file *ast.File, name string) (*ast.StructType, error) {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok || ts.Name.Name != name {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return nil, fmt.Errorf("gen: %s is not a struct", name)
			}
			return st, nil
		}
	}
	return nil, fmt.Errorf("gen: struct %s not found", name)
}

// typeString renders the subset of type expressions the generator accepts.
func typeString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.ArrayType:
		if t.Len == nil {
			return "[]" + typeString(t.Elt)
		}
	}
	return "<unsupported>"
}

// funcs provides template helpers that emit per-type codec calls.
var funcs = template.FuncMap{
	"enc": func(f Field) string {
		switch f.Type {
		case "bool":
			return fmt.Sprintf("w.Bool(v.%s)", f.Name)
		case "int":
			return fmt.Sprintf("w.U64(uint64(int64(v.%s)))", f.Name)
		case "int32":
			return fmt.Sprintf("w.U32(uint32(v.%s))", f.Name)
		case "int64":
			return fmt.Sprintf("w.U64(uint64(v.%s))", f.Name)
		case "float64":
			return fmt.Sprintf("w.F64(v.%s)", f.Name)
		case "string":
			return fmt.Sprintf("w.String16(v.%s)", f.Name)
		case "[]byte":
			return fmt.Sprintf("w.Bytes32(v.%s)", f.Name)
		case "[]int32":
			return fmt.Sprintf("w.U32(uint32(len(v.%s)))\n\tfor _, x := range v.%s {\n\t\tw.U32(uint32(x))\n\t}", f.Name, f.Name)
		case "[]float64":
			return fmt.Sprintf("w.U32(uint32(len(v.%s)))\n\tfor _, x := range v.%s {\n\t\tw.F64(x)\n\t}", f.Name, f.Name)
		}
		return "// unsupported"
	},
	"dec": func(f Field) string {
		switch f.Type {
		case "bool":
			return fmt.Sprintf("v.%s = r.Bool()", f.Name)
		case "int":
			return fmt.Sprintf("v.%s = int(int64(r.U64()))", f.Name)
		case "int32":
			return fmt.Sprintf("v.%s = int32(r.U32())", f.Name)
		case "int64":
			return fmt.Sprintf("v.%s = int64(r.U64())", f.Name)
		case "float64":
			return fmt.Sprintf("v.%s = r.F64()", f.Name)
		case "string":
			return fmt.Sprintf("v.%s = r.String16()", f.Name)
		case "[]byte":
			return fmt.Sprintf("v.%s = r.Bytes32()", f.Name)
		case "[]int32":
			return fmt.Sprintf("{\n\t\tn := int(r.U32())\n\t\tv.%s = make([]int32, 0, n)\n\t\tfor i := 0; i < n; i++ {\n\t\t\tv.%s = append(v.%s, int32(r.U32()))\n\t\t}\n\t}", f.Name, f.Name, f.Name)
		case "[]float64":
			return fmt.Sprintf("{\n\t\tn := int(r.U32())\n\t\tv.%s = make([]float64, 0, n)\n\t\tfor i := 0; i < n; i++ {\n\t\t\tv.%s = append(v.%s, r.F64())\n\t\t}\n\t}", f.Name, f.Name, f.Name)
		}
		return "// unsupported"
	},
}

var tmpl = template.Must(template.New("replica").Funcs(funcs).Parse(strings.TrimLeft(`
// Code generated by mochagen; DO NOT EDIT.
//
// {{.Wrapper}} is the generated Replica subclass for sharing {{.Struct}}
// values through Mocha, with explicit field-by-field serialization.

package {{.Package}}

import (
	"sync"

	"mocha/internal/wire"
)

// {{.Wrapper}} wraps a {{.Struct}} for use as Mocha replica content.
// Guard access with the associated ReplicaLock; the internal mutex only
// protects against the runtime marshaling concurrently with local reads.
type {{.Wrapper}} struct {
	mu sync.Mutex
	v  {{.Struct}}
}

// New{{.Wrapper}} wraps an initial value.
func New{{.Wrapper}}(v {{.Struct}}) *{{.Wrapper}} {
	return &{{.Wrapper}}{v: v}
}

// Get returns the current value.
func (g *{{.Wrapper}}) Get() {{.Struct}} {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Set replaces the value.
func (g *{{.Wrapper}}) Set(v {{.Struct}}) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v = v
}

// Update applies a mutation atomically.
func (g *{{.Wrapper}}) Update(f func(*{{.Struct}})) {
	g.mu.Lock()
	defer g.mu.Unlock()
	f(&g.v)
}

// MarshalMocha implements marshal.Serializable.
func (g *{{.Wrapper}}) MarshalMocha() ([]byte, error) {
	g.mu.Lock()
	v := g.v
	g.mu.Unlock()
	w := wire.NewWriter(64)
{{- range .Fields}}
	{{enc .}}
{{- end}}
	return w.Bytes(), nil
}

// UnmarshalMocha implements marshal.Serializable.
func (g *{{.Wrapper}}) UnmarshalMocha(data []byte) error {
	r := wire.NewReader(data)
	var v {{.Struct}}
{{- range .Fields}}
	{{dec .}}
{{- end}}
	if err := r.Err(); err != nil {
		return err
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
	return nil
}
`, "\n")))
