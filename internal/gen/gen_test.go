package gen

import (
	"strings"
	"testing"
)

const sample = `
package demo

// TableSetting is the home-service app's shared state.
type TableSetting struct {
	Flatware int
	Plate    int32
	Glass    int64
	Price    float64
	Comment  string
	Thumb    []byte
	History  []int32
	Weights  []float64
	Final    bool
}

type NotAStruct int
`

func TestGenerate(t *testing.T) {
	out, err := Generate([]byte(sample), "TableSetting")
	if err != nil {
		t.Fatal(err)
	}
	code := string(out)
	for _, want := range []string{
		"package demo",
		"type TableSettingReplica struct",
		"func NewTableSettingReplica(v TableSetting)",
		"func (g *TableSettingReplica) MarshalMocha()",
		"func (g *TableSettingReplica) UnmarshalMocha(data []byte)",
		"w.String16(v.Comment)",
		"w.Bytes32(v.Thumb)",
		"v.Final = r.Bool()",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
	if strings.Contains(code, "<unsupported>") {
		t.Error("generated code contains unsupported markers")
	}
}

func TestGenerateErrors(t *testing.T) {
	tests := []struct {
		name   string
		src    string
		target string
	}{
		{name: "missing struct", src: sample, target: "Ghost"},
		{name: "not a struct", src: sample, target: "NotAStruct"},
		{name: "unexported field", src: "package p\ntype S struct{ x int }", target: "S"},
		{name: "unsupported type", src: "package p\ntype S struct{ M map[string]int }", target: "S"},
		{name: "empty struct", src: "package p\ntype S struct{}", target: "S"},
		{name: "syntax error", src: "package p\nfunc {", target: "S"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Generate([]byte(tt.src), tt.target); err == nil {
				t.Fatal("Generate succeeded")
			}
		})
	}
}
