// Package placement maps the lock namespace onto manager sites with a
// consistent-hash ring. The paper pins every lock's manager to one fixed
// home site (§3), so a crashed home permanently strands its locks and
// every acquisition in the system serializes through one process; the
// ring partitions the namespace across all manager sites instead, and —
// because consistent hashing moves only the failed site's arc — lets a
// dead manager's locks be re-homed onto its ring successor without
// disturbing the placement of any other lock.
//
// The ring is deterministic: the same member set always produces the
// same placement, on every site, with no coordination. Sites therefore
// agree on a lock's home from the directory alone; runtime exceptions
// (locality migrations, standby promotions) are layered on top by core
// as explicit per-lock overrides, not by mutating the ring.
package placement

import (
	"sort"

	"mocha/internal/wire"
)

// DefaultVirtualNodes is the number of ring points each site contributes.
// 64 keeps the largest/smallest arc ratio tight enough that a uniform
// lock population spreads within ~2x across sites, while the whole ring
// for a few hundred sites stays a few tens of kilobytes.
const DefaultVirtualNodes = 64

// point is one virtual node: a position on the hash circle owned by a site.
type point struct {
	hash uint64
	site wire.SiteID
}

// Ring is an immutable consistent-hash ring over a set of manager sites.
// Build one with New; all methods are safe for concurrent use because the
// ring never changes after construction.
type Ring struct {
	points []point       // sorted by hash
	sites  []wire.SiteID // sorted member list
}

// splitmix64 is the ring's hash: a full-avalanche 64-bit mixer, so
// consecutive lock IDs and site IDs land uniformly on the circle.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// pointHash positions virtual node v of a site on the circle. The site and
// replica index are mixed together first so a site's virtual nodes are
// scattered, not clustered.
func pointHash(site wire.SiteID, v int) uint64 {
	return splitmix64(uint64(site)<<20 | uint64(v)&0xFFFFF)
}

// lockHash positions a lock on the circle. Lock IDs are salted with a
// distinct constant so a lock never sits exactly on a site point.
func lockHash(id wire.LockID) uint64 {
	return splitmix64(uint64(id) ^ 0xA5A5_5A5A_C3C3_3C3C)
}

// New builds a ring over the given manager sites with vnodes virtual
// nodes per site (DefaultVirtualNodes when vnodes <= 0). Duplicate sites
// are collapsed; a ring over zero sites is valid and maps every lock to
// site 0 ("no home").
func New(sites []wire.SiteID, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[wire.SiteID]bool, len(sites))
	members := make([]wire.SiteID, 0, len(sites))
	for _, s := range sites {
		if s == 0 || seen[s] {
			continue
		}
		seen[s] = true
		members = append(members, s)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	r := &Ring{sites: members}
	r.points = make([]point, 0, len(members)*vnodes)
	for _, s := range members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: pointHash(s, v), site: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A hash collision between two sites' points would make placement
		// order-dependent; break it by site ID so the ring stays canonical.
		return r.points[i].site < r.points[j].site
	})
	return r
}

// Sites returns the ring's member sites in ascending ID order. The slice
// is shared; callers must not modify it.
func (r *Ring) Sites() []wire.SiteID { return r.sites }

// Len reports the number of member sites.
func (r *Ring) Len() int { return len(r.sites) }

// Contains reports whether a site is a ring member.
func (r *Ring) Contains(site wire.SiteID) bool {
	i := sort.Search(len(r.sites), func(i int) bool { return r.sites[i] >= site })
	return i < len(r.sites) && r.sites[i] == site
}

// owner returns the site owning the first ring point at or after h,
// wrapping at the top of the circle.
func (r *Ring) owner(h uint64) wire.SiteID {
	if len(r.points) == 0 {
		return 0
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].site
}

// Home maps a lock to its home site: the owner of the first virtual node
// clockwise from the lock's position. Returns 0 on an empty ring.
func (r *Ring) Home(id wire.LockID) wire.SiteID {
	return r.owner(lockHash(id))
}

// HomeExcluding maps a lock to its home while treating the listed sites
// as dead: the walk continues clockwise past virtual nodes owned by any
// excluded site, which is exactly the consistent-hash failover rule —
// a dead home's arc falls to its successors while every other lock
// keeps its placement. Returns 0 when every member is excluded.
func (r *Ring) HomeExcluding(id wire.LockID, down map[wire.SiteID]bool) wire.SiteID {
	if len(r.points) == 0 {
		return 0
	}
	h := lockHash(id)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for k := 0; k < len(r.points); k++ {
		p := r.points[(i+k)%len(r.points)]
		if !down[p.site] {
			return p.site
		}
	}
	return 0
}

// Successor returns the member that follows site in ascending ID order,
// wrapping past the highest ID — the standby that receives the site's
// lock-record stream. A ring with fewer than two members has no distinct
// successor and returns 0.
func (r *Ring) Successor(site wire.SiteID) wire.SiteID {
	if len(r.sites) < 2 || !r.Contains(site) {
		return 0
	}
	i := sort.Search(len(r.sites), func(i int) bool { return r.sites[i] > site })
	if i == len(r.sites) {
		i = 0
	}
	return r.sites[i]
}

// Predecessor returns the member whose Successor is site — the home a
// standby watches. Returns 0 with fewer than two members.
func (r *Ring) Predecessor(site wire.SiteID) wire.SiteID {
	if len(r.sites) < 2 {
		return 0
	}
	i := sort.Search(len(r.sites), func(i int) bool { return r.sites[i] >= site })
	if i == len(r.sites) || r.sites[i] != site {
		// Not a member: nothing watches for it.
		return 0
	}
	if i == 0 {
		return r.sites[len(r.sites)-1]
	}
	return r.sites[i-1]
}

// LocksOf partitions a set of locks by home site — the helper harnesses
// use to find which locks a kill strands and which standby must answer
// for them.
func (r *Ring) LocksOf(ids []wire.LockID) map[wire.SiteID][]wire.LockID {
	out := make(map[wire.SiteID][]wire.LockID)
	for _, id := range ids {
		out[r.Home(id)] = append(out[r.Home(id)], id)
	}
	return out
}
