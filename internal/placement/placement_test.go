package placement

import (
	"testing"

	"mocha/internal/wire"
)

func sites(ids ...int) []wire.SiteID {
	out := make([]wire.SiteID, len(ids))
	for i, id := range ids {
		out[i] = wire.SiteID(id)
	}
	return out
}

func TestDeterministicAcrossConstruction(t *testing.T) {
	a := New(sites(5, 1, 3, 2, 4), 0)
	b := New(sites(4, 2, 5, 3, 1, 1, 2), 0) // shuffled, with duplicates
	if a.Len() != 5 || b.Len() != 5 {
		t.Fatalf("member counts = %d, %d; want 5", a.Len(), b.Len())
	}
	for id := wire.LockID(1); id <= 5000; id++ {
		if a.Home(id) != b.Home(id) {
			t.Fatalf("lock %d: homes differ (%d vs %d) across construction orders", id, a.Home(id), b.Home(id))
		}
	}
}

func TestSpreadAcrossSites(t *testing.T) {
	r := New(sites(1, 2, 3, 4, 5, 6, 7, 8), 0)
	counts := make(map[wire.SiteID]int)
	const n = 8000
	for id := wire.LockID(1); id <= n; id++ {
		h := r.Home(id)
		if !r.Contains(h) {
			t.Fatalf("lock %d homed at non-member %d", id, h)
		}
		counts[h]++
	}
	if len(counts) != 8 {
		t.Fatalf("locks landed on %d of 8 sites", len(counts))
	}
	for s, c := range counts {
		// Uniform would be 1000; require every site within a loose 3x band.
		if c < n/8/3 || c > n/8*3 {
			t.Fatalf("site %d homes %d of %d locks: spread too skewed", s, c, n)
		}
	}
}

func TestConsistencyUnderMemberLoss(t *testing.T) {
	full := New(sites(1, 2, 3, 4, 5, 6), 0)
	without4 := New(sites(1, 2, 3, 5, 6), 0)
	moved, kept := 0, 0
	for id := wire.LockID(1); id <= 6000; id++ {
		before := full.Home(id)
		after := without4.Home(id)
		if before == 4 {
			if after == 4 {
				t.Fatalf("lock %d still homed at removed site 4", id)
			}
			moved++
			continue
		}
		if before != after {
			t.Fatalf("lock %d not homed at the removed site moved %d -> %d", id, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

func TestHomeExcludingMatchesRebuiltRing(t *testing.T) {
	full := New(sites(1, 2, 3, 4, 5, 6), 0)
	rebuilt := New(sites(1, 2, 3, 5, 6), 0)
	down := map[wire.SiteID]bool{4: true}
	for id := wire.LockID(1); id <= 3000; id++ {
		if got, want := full.HomeExcluding(id, down), rebuilt.Home(id); got != want {
			t.Fatalf("lock %d: HomeExcluding=%d, rebuilt ring=%d", id, got, want)
		}
	}
	if got := full.HomeExcluding(7, map[wire.SiteID]bool{1: true, 2: true, 3: true, 4: true, 5: true, 6: true}); got != 0 {
		t.Fatalf("all members down: HomeExcluding = %d, want 0", got)
	}
}

func TestSuccessorPredecessor(t *testing.T) {
	r := New(sites(2, 5, 9), 0)
	cases := []struct{ site, succ, pred wire.SiteID }{
		{2, 5, 9},
		{5, 9, 2},
		{9, 2, 5},
	}
	for _, c := range cases {
		if got := r.Successor(c.site); got != c.succ {
			t.Fatalf("Successor(%d) = %d, want %d", c.site, got, c.succ)
		}
		if got := r.Predecessor(c.site); got != c.pred {
			t.Fatalf("Predecessor(%d) = %d, want %d", c.site, got, c.pred)
		}
	}
	if got := r.Successor(7); got != 0 {
		t.Fatalf("Successor of non-member = %d, want 0", got)
	}
	if got := r.Predecessor(7); got != 0 {
		t.Fatalf("Predecessor of non-member = %d, want 0", got)
	}
	single := New(sites(3), 0)
	if single.Successor(3) != 0 || single.Predecessor(3) != 0 {
		t.Fatalf("singleton ring must have no distinct successor/predecessor")
	}
}

func TestEmptyAndZeroSites(t *testing.T) {
	r := New(nil, 0)
	if r.Len() != 0 || r.Home(7) != 0 || r.Successor(1) != 0 {
		t.Fatalf("empty ring should map everything to 0")
	}
	r2 := New(sites(0, 0), 0)
	if r2.Len() != 0 {
		t.Fatalf("site 0 must be ignored, got %d members", r2.Len())
	}
	if r.HomeExcluding(1, nil) != 0 {
		t.Fatalf("empty ring HomeExcluding should be 0")
	}
}

func TestLocksOf(t *testing.T) {
	r := New(sites(1, 2, 3), 0)
	ids := []wire.LockID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	part := r.LocksOf(ids)
	total := 0
	for site, locks := range part {
		if !r.Contains(site) {
			t.Fatalf("partition key %d is not a member", site)
		}
		for _, id := range locks {
			if r.Home(id) != site {
				t.Fatalf("lock %d filed under %d but homes at %d", id, site, r.Home(id))
			}
		}
		total += len(locks)
	}
	if total != len(ids) {
		t.Fatalf("partition covers %d of %d locks", total, len(ids))
	}
}

func TestVirtualNodeCount(t *testing.T) {
	few := New(sites(1, 2), 3)
	if got := len(few.points); got != 6 {
		t.Fatalf("2 sites x 3 vnodes = %d points, want 6", got)
	}
	def := New(sites(1, 2), 0)
	if got := len(def.points); got != 2*DefaultVirtualNodes {
		t.Fatalf("default vnodes: %d points, want %d", got, 2*DefaultVirtualNodes)
	}
}
