package session

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"mocha/internal/mnet"
	"mocha/internal/netsim"
	"mocha/internal/transport"
	"mocha/internal/wire"
)

func TestVectorAlgebra(t *testing.T) {
	a := Vector{1: 2, 2: 1}
	b := Vector{1: 1, 2: 1}
	c := Vector{1: 1, 3: 1}

	if !a.Dominates(b) || b.Dominates(a) {
		t.Fatal("domination wrong")
	}
	if !a.Concurrent(c) || !c.Concurrent(a) {
		t.Fatal("concurrency wrong")
	}
	if a.Concurrent(a.Clone()) {
		t.Fatal("equal vectors reported concurrent")
	}
	m := b.Clone()
	m.Merge(c)
	if m[1] != 1 || m[2] != 1 || m[3] != 1 {
		t.Fatalf("merge = %v", m)
	}
	if !m.Equal(Vector{1: 1, 2: 1, 3: 1}) {
		t.Fatal("Equal wrong")
	}
	if got := a.String(); got != "[1:2 2:1]" {
		t.Fatalf("String = %q", got)
	}
	var zero Vector
	if !a.Dominates(zero) || zero.Dominates(a) {
		t.Fatal("zero-vector domination wrong")
	}
}

func TestQuickVectorMergeDominates(t *testing.T) {
	f := func(a0, a1, a2, b0, b1, b2 uint8) bool {
		a := Vector{1: uint64(a0), 2: uint64(a1), 3: uint64(a2)}
		b := Vector{1: uint64(b0), 2: uint64(b1), 3: uint64(b2)}
		m := a.Clone()
		m.Merge(b)
		return m.Dominates(a) && m.Dominates(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCodecRoundTrip(t *testing.T) {
	in := Write{Object: "board", Origin: 3, Clock: Vector{1: 4, 3: 9}, Data: []byte("hello"), UnixNanos: 12345}
	w := wire.NewWriter(32)
	in.encode(w)
	r := wire.NewReader(w.Bytes())
	out := decodeWrite(r)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if out.Object != in.Object || out.Origin != in.Origin || !out.Clock.Equal(in.Clock) ||
		string(out.Data) != "hello" || out.UnixNanos != 12345 {
		t.Fatalf("round trip: %+v", out)
	}
}

// sessionCluster builds n stores over a simulated network with manual
// anti-entropy (tests drive PullOnce explicitly for determinism).
func sessionCluster(t *testing.T, n int, resolve Resolver) (map[wire.SiteID]*Store, *transport.SimNetwork) {
	t.Helper()
	seed := netsim.SeedFromEnv(31)
	t.Logf("network seed %d (set %s to replay)", seed, netsim.SeedEnv)
	sn := transport.NewSimNetwork(netsim.Config{Profile: netsim.Perfect(), Seed: seed})
	t.Cleanup(func() { _ = sn.Close() })

	directory := make(map[wire.SiteID]string, n)
	endpoints := make(map[wire.SiteID]*mnet.Endpoint, n)
	for i := 1; i <= n; i++ {
		site := wire.SiteID(i)
		stack, err := sn.NewStack(netsim.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		ep := mnet.NewEndpoint(stack.Datagram(), mnet.Config{RTO: 25 * time.Millisecond, MaxRetries: 4})
		endpoints[site] = ep
		directory[site] = stack.Datagram().LocalAddr()
		t.Cleanup(func() { _ = ep.Close() })
	}
	stores := make(map[wire.SiteID]*Store, n)
	ts := time.Now()
	var seq atomic.Int64
	for i := 1; i <= n; i++ {
		site := wire.SiteID(i)
		st, err := New(Config{
			Site:        site,
			Endpoint:    endpoints[site],
			Directory:   directory,
			Resolve:     resolve,
			AntiEntropy: -1, // manual
			Now: func() time.Time {
				return ts.Add(time.Duration(seq.Add(1)) * time.Microsecond)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(st.Close)
		stores[site] = st
	}
	return stores, sn
}

// awaitValue polls until the store's object holds want.
func awaitValue(t *testing.T, st *Store, name, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		data, _, ok := st.Read(name)
		if ok && string(data) == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("site %d: %q = %q, want %q", st.Site(), name, data, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestGossipPropagation(t *testing.T) {
	stores, _ := sessionCluster(t, 3, nil)
	stores[1].Write("note", []byte("v1"), nil)
	awaitValue(t, stores[2], "note", "v1")
	awaitValue(t, stores[3], "note", "v1")
}

func TestCausalUpdateWins(t *testing.T) {
	stores, _ := sessionCluster(t, 2, nil)
	clock1 := stores[1].Write("note", []byte("first"), nil)
	awaitValue(t, stores[2], "note", "first")
	// Site 2 updates with site 1's write as dependency: strictly newer.
	stores[2].Write("note", []byte("second"), clock1)
	awaitValue(t, stores[1], "note", "second")
	// A stale redelivery of "first" must not regress the value.
	data, _, _ := stores[1].Read("note")
	if string(data) != "second" {
		t.Fatalf("value regressed to %q", data)
	}
}

func TestConflictDetectionAndResolution(t *testing.T) {
	var conflicts atomic.Int64
	resolve := func(local, incoming Write) []byte {
		conflicts.Add(1)
		// Deterministic content policy: lexicographically larger value.
		if string(incoming.Data) > string(local.Data) {
			return incoming.Data
		}
		return local.Data
	}
	stores, sn := sessionCluster(t, 2, resolve)

	// Partition, write concurrently on both sides, heal, repair.
	sn.Underlying().Partition(1, 2, true)
	stores[1].Write("note", []byte("apple"), nil)
	stores[2].Write("note", []byte("banana"), nil)
	time.Sleep(50 * time.Millisecond)
	sn.Underlying().Partition(1, 2, false)

	stores[1].PullOnce()
	stores[2].PullOnce()
	awaitValue(t, stores[1], "note", "banana")
	awaitValue(t, stores[2], "note", "banana")

	if stores[1].Stats().Conflicts == 0 && stores[2].Stats().Conflicts == 0 {
		t.Fatal("no conflicts detected for concurrent writes")
	}
	// The clocks must converge too; pull replies apply asynchronously, so
	// poll with repair rounds.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, c1, _ := stores[1].Read("note")
		_, c2, _ := stores[2].Read("note")
		if c1.Equal(c2) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("clocks diverged: %s vs %s", c1, c2)
		}
		stores[1].PullOnce()
		stores[2].PullOnce()
		time.Sleep(10 * time.Millisecond)
	}
}

func TestAntiEntropyHealsPartition(t *testing.T) {
	stores, sn := sessionCluster(t, 3, nil)
	sn.Underlying().Partition(1, 3, true)
	sn.Underlying().Partition(2, 3, true)
	stores[1].Write("doc", []byte("while-partitioned"), nil)
	awaitValue(t, stores[2], "doc", "while-partitioned")
	time.Sleep(50 * time.Millisecond)
	if _, _, ok := stores[3].Read("doc"); ok {
		t.Fatal("write crossed the partition")
	}
	sn.Underlying().Partition(1, 3, false)
	sn.Underlying().Partition(2, 3, false)
	// Site 3 pulls from peers round-robin; two rounds guarantee it asks a
	// site that has the object.
	stores[3].PullOnce()
	stores[3].PullOnce()
	awaitValue(t, stores[3], "doc", "while-partitioned")
}

func TestLastWriterWinsDefault(t *testing.T) {
	base := time.Unix(0, 1000)
	local := Write{Origin: 1, Data: []byte("old"), UnixNanos: base.UnixNano()}
	incoming := Write{Origin: 2, Data: []byte("new"), UnixNanos: base.Add(time.Second).UnixNano()}
	if got := LastWriterWins(local, incoming); string(got) != "new" {
		t.Fatalf("newer write lost: %q", got)
	}
	if got := LastWriterWins(incoming, local); string(got) != "new" {
		t.Fatalf("order dependence: %q", got)
	}
	tie := Write{Origin: 3, Data: []byte("tie"), UnixNanos: base.UnixNano()}
	if got := LastWriterWins(local, tie); string(got) != "tie" {
		t.Fatalf("tiebreak by origin failed: %q", got)
	}
}

func TestSessionGuarantees(t *testing.T) {
	stores, _ := sessionCluster(t, 3, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	se := NewSession()
	if err := se.Write(ctx, stores[1], "pref", []byte("dark-mode")); err != nil {
		t.Fatal(err)
	}
	// Read your writes at ANOTHER replica: the session read must wait for
	// the write to arrive there rather than return stale emptiness.
	data, err := se.Read(ctx, stores[3], "pref")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "dark-mode" {
		t.Fatalf("read-your-writes violated: %q", data)
	}

	// Monotonic reads: once read at store 3, a read at store 2 must be at
	// least as new.
	data, err = se.Read(ctx, stores[2], "pref")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "dark-mode" {
		t.Fatalf("monotonic reads violated: %q", data)
	}

	// Writes follow reads: a write issued at store 2 after reading must
	// dominate what was read, so it wins everywhere without conflict.
	if err := se.Write(ctx, stores[2], "pref", []byte("light-mode")); err != nil {
		t.Fatal(err)
	}
	for _, st := range stores {
		awaitValue(t, st, "pref", "light-mode")
	}
	for _, st := range stores {
		if st.Stats().Conflicts != 0 {
			t.Fatalf("causal write produced a conflict at site %d", st.Site())
		}
	}
}

func TestSessionReadBlocksUntilCatchUp(t *testing.T) {
	stores, sn := sessionCluster(t, 2, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	se := NewSession()
	// Cut gossip so store 2 stays behind.
	sn.Underlying().Partition(1, 2, true)
	if err := se.Write(ctx, stores[1], "pref", []byte("v1")); err != nil {
		t.Fatal(err)
	}

	readDone := make(chan error, 1)
	go func() {
		_, err := se.Read(ctx, stores[2], "pref")
		readDone <- err
	}()
	select {
	case err := <-readDone:
		t.Fatalf("session read returned (%v) before the replica caught up", err)
	case <-time.After(150 * time.Millisecond):
	}

	sn.Underlying().Partition(1, 2, false)
	stores[2].PullOnce()
	select {
	case err := <-readDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("session read never unblocked after repair")
	}

	// A bounded read against a still-stale replica must time out cleanly.
	sn.Underlying().Partition(1, 2, true)
	if err := se.Write(ctx, stores[1], "pref", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	shortCtx, cancel2 := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel2()
	if _, err := se.Read(shortCtx, stores[2], "pref"); err == nil {
		t.Fatal("stale read succeeded within timeout")
	}
}

func TestConvergenceUnderConcurrentWriters(t *testing.T) {
	// Many unsynchronized writers; after repair rounds all replicas hold
	// identical bytes and clocks (the optimistic mode's core invariant).
	const sites = 4
	stores, _ := sessionCluster(t, sites, nil)

	for round := 0; round < 5; round++ {
		for i := 1; i <= sites; i++ {
			stores[wire.SiteID(i)].Write("board", []byte(fmt.Sprintf("r%d-s%d", round, i)), nil)
		}
	}
	// Drive anti-entropy until quiescent: every store pulls from every
	// peer at least once, twice over.
	for round := 0; round < 2*(sites-1); round++ {
		for i := 1; i <= sites; i++ {
			stores[wire.SiteID(i)].PullOnce()
		}
		time.Sleep(20 * time.Millisecond)
	}

	want, wantClock, ok := stores[1].Read("board")
	if !ok {
		t.Fatal("object missing at site 1")
	}
	for i := 2; i <= sites; i++ {
		deadline := time.Now().Add(5 * time.Second)
		for {
			got, clock, ok := stores[wire.SiteID(i)].Read("board")
			if ok && string(got) == string(want) && clock.Equal(wantClock) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("site %d diverged: %q %s vs %q %s", i, got, clock, want, wantClock)
			}
			stores[wire.SiteID(i)].PullOnce()
			time.Sleep(10 * time.Millisecond)
		}
	}
}
