// Package session implements Mocha's non-synchronization-based consistency
// mode — the future work the paper's conclusion announces ("Currently, we
// are focusing on providing support for applications which require
// non-synchronization based solutions for maintaining consistency") and
// grounds in the systems it cites: Bayou's weakly consistent replication
// with conflict detection and resolution, and Terry et al.'s session
// guarantees [TDP+94].
//
// A Store holds optimistically replicated objects. Writes apply locally at
// once (no lock, no home site), stamp a version vector, and propagate to
// peers best-effort; periodic anti-entropy exchanges heal whatever gossip
// missed, so all stores converge once quiescent. Concurrent writes are
// detected by vector comparison and settled by a Resolver (last-writer-
// wins by default). A Session layered on any store enforces the classic
// four guarantees — read your writes, monotonic reads, writes follow
// reads, monotonic writes — by refusing reads from replicas that have not
// yet caught up with the session's past.
package session

import (
	"sort"

	"mocha/internal/wire"
)

// Vector is a version vector: one counter per writing site.
type Vector map[wire.SiteID]uint64

// Clone copies the vector.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	for k, x := range v {
		out[k] = x
	}
	return out
}

// Merge folds other into v, taking per-site maxima.
func (v Vector) Merge(other Vector) {
	for k, x := range other {
		if x > v[k] {
			v[k] = x
		}
	}
}

// Dominates reports whether v >= other at every component.
func (v Vector) Dominates(other Vector) bool {
	for k, x := range other {
		if v[k] < x {
			return false
		}
	}
	return true
}

// Concurrent reports whether neither vector dominates the other — a
// conflict in need of resolution.
func (v Vector) Concurrent(other Vector) bool {
	return !v.Dominates(other) && !other.Dominates(v)
}

// Equal reports component-wise equality.
func (v Vector) Equal(other Vector) bool {
	return v.Dominates(other) && other.Dominates(v)
}

// String renders the vector deterministically, e.g. "[1:3 2:1]".
func (v Vector) String() string {
	sites := make([]wire.SiteID, 0, len(v))
	for s := range v {
		if v[s] > 0 {
			sites = append(sites, s)
		}
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	out := "["
	for i, s := range sites {
		if i > 0 {
			out += " "
		}
		out += itoa(uint64(s)) + ":" + itoa(v[s])
	}
	return out + "]"
}

// itoa avoids strconv for this one tiny rendering helper.
func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// encodeVector writes a vector with a count prefix.
func encodeVector(w *wire.Writer, v Vector) {
	sites := make([]wire.SiteID, 0, len(v))
	for s := range v {
		if v[s] > 0 {
			sites = append(sites, s)
		}
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	w.U16(uint16(len(sites)))
	for _, s := range sites {
		w.U32(uint32(s))
		w.U64(v[s])
	}
}

// decodeVector reads a vector written by encodeVector.
func decodeVector(r *wire.Reader) Vector {
	n := int(r.U16())
	v := make(Vector, n)
	for i := 0; i < n; i++ {
		site := wire.SiteID(r.U32())
		v[site] = r.U64()
	}
	return v
}

// Write is one stamped update to one object.
type Write struct {
	// Object names the replicated object.
	Object string
	// Origin is the site that issued the write.
	Origin wire.SiteID
	// Clock is the object's version vector after this write at the
	// origin, including its causal dependencies (writes-follow-reads).
	Clock Vector
	// Data is the new object value.
	Data []byte
	// UnixNanos is the origin's wall-clock stamp, used by the default
	// last-writer-wins resolver.
	UnixNanos int64
}

// encode serializes the write.
func (wr Write) encode(w *wire.Writer) {
	w.String16(wr.Object)
	w.U32(uint32(wr.Origin))
	encodeVector(w, wr.Clock)
	w.Bytes32(wr.Data)
	w.U64(uint64(wr.UnixNanos))
}

// decodeWrite parses one write.
func decodeWrite(r *wire.Reader) Write {
	return Write{
		Object:    r.String16(),
		Origin:    wire.SiteID(r.U32()),
		Clock:     decodeVector(r),
		Data:      r.Bytes32(),
		UnixNanos: int64(r.U64()),
	}
}

// Resolver settles a conflict between the locally stored state and a
// concurrent incoming write, returning the data the object should hold.
// Both sides' stamps are available for content- or time-based policies.
type Resolver func(local, incoming Write) []byte

// LastWriterWins is the default resolver: newest wall-clock stamp wins,
// with origin site as the deterministic tiebreak.
func LastWriterWins(local, incoming Write) []byte {
	if incoming.UnixNanos > local.UnixNanos {
		return incoming.Data
	}
	if incoming.UnixNanos == local.UnixNanos && incoming.Origin > local.Origin {
		return incoming.Data
	}
	return local.Data
}
