package session

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mocha/internal/eventlog"
	"mocha/internal/mnet"
	"mocha/internal/wire"
)

// PortSession is the well-known logical port session stores use.
const PortSession uint16 = 8

// Message opcodes on the session port.
const (
	opWrite byte = iota + 1
	opPullRequest
	opPullReply
)

// Config parameterizes a store.
type Config struct {
	// Site is this store's identity.
	Site wire.SiteID
	// Endpoint carries the store's traffic; the store opens PortSession.
	Endpoint *mnet.Endpoint
	// Directory maps sites to endpoint addresses, as for package core.
	Directory map[wire.SiteID]string
	// Resolve settles concurrent writes (default LastWriterWins). It must
	// be deterministic and order-insensitive or replicas may diverge.
	Resolve Resolver
	// AntiEntropy is the gossip-repair interval (default 500ms; <0
	// disables the loop, for deterministic tests).
	AntiEntropy time.Duration
	// SendTimeout bounds gossip sends (default 2s).
	SendTimeout time.Duration
	// Log receives store events; nil means none.
	Log *eventlog.Logger
	// Now supplies write timestamps (default time.Now), injectable for
	// deterministic conflict tests.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Resolve == nil {
		c.Resolve = LastWriterWins
	}
	if c.AntiEntropy == 0 {
		c.AntiEntropy = 500 * time.Millisecond
	}
	if c.SendTimeout <= 0 {
		c.SendTimeout = 2 * time.Second
	}
	if c.Log == nil {
		c.Log = eventlog.Nop()
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Stats counts store activity.
type Stats struct {
	LocalWrites   int64
	Applied       int64
	StaleIgnored  int64
	Conflicts     int64
	GossipSent    int64
	PullRounds    int64
	PullShipments int64
}

// object is one replicated value.
type object struct {
	cur   Write
	clock Vector
}

// Store is one site's optimistically replicated object store.
type Store struct {
	cfg  Config
	port *mnet.Port

	mu      sync.Mutex
	objects map[string]*object
	stats   Stats
	peerIdx int
	waiters []*storeWaiter

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// storeWaiter blocks a session read until an object catches up.
type storeWaiter struct {
	name string
	min  Vector
	ch   chan struct{}
}

// New starts a store on the endpoint.
func New(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if cfg.Endpoint == nil || cfg.Site == 0 || len(cfg.Directory) == 0 {
		return nil, fmt.Errorf("session: config needs endpoint, site, and directory")
	}
	port, err := cfg.Endpoint.OpenPort(PortSession)
	if err != nil {
		return nil, fmt.Errorf("session: open port: %w", err)
	}
	s := &Store{
		cfg:     cfg,
		port:    port,
		objects: make(map[string]*object),
		stopCh:  make(chan struct{}),
	}
	port.SetHandler(s.handle)
	if cfg.AntiEntropy > 0 {
		s.wg.Add(1)
		go s.antiEntropyLoop()
	}
	return s, nil
}

// Close stops the anti-entropy loop. The endpoint stays open (it belongs
// to the node).
func (s *Store) Close() {
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.wg.Wait()
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Site returns the store's site ID.
func (s *Store) Site() wire.SiteID { return s.cfg.Site }

// Read returns an object's current value and clock. ok is false when the
// object has never been written anywhere this store knows of.
func (s *Store) Read(name string) (data []byte, clock Vector, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, exists := s.objects[name]
	if !exists || len(obj.clock) == 0 {
		return nil, Vector{}, false
	}
	cp := make([]byte, len(obj.cur.Data))
	copy(cp, obj.cur.Data)
	return cp, obj.clock.Clone(), true
}

// Write applies an update locally — no lock, no home site — and gossips it
// to every peer best-effort. deps carries the causal dependencies a
// session wants attached (nil for none). It returns the object's clock
// after the write.
func (s *Store) Write(name string, data []byte, deps Vector) Vector {
	s.mu.Lock()
	obj := s.getLocked(name)
	clock := obj.clock.Clone()
	clock.Merge(deps)
	clock[s.cfg.Site]++
	w := Write{
		Object:    name,
		Origin:    s.cfg.Site,
		Clock:     clock,
		Data:      append([]byte(nil), data...),
		UnixNanos: s.cfg.Now().UnixNano(),
	}
	s.applyLocked(w)
	s.stats.LocalWrites++
	result := obj.clock.Clone()
	s.mu.Unlock()

	s.gossip(w)
	return result
}

// getLocked returns (creating) an object. Caller holds s.mu.
func (s *Store) getLocked(name string) *object {
	obj, ok := s.objects[name]
	if !ok {
		obj = &object{clock: Vector{}}
		s.objects[name] = obj
	}
	return obj
}

// applyLocked folds one write into local state. Caller holds s.mu.
func (s *Store) applyLocked(in Write) {
	obj := s.getLocked(in.Object)
	switch {
	case obj.clock.Dominates(in.Clock):
		// Already reflected (or superseded); nothing to do.
		s.stats.StaleIgnored++
		return
	case in.Clock.Dominates(obj.clock):
		obj.cur = in
		obj.clock = obj.clock.Clone()
		obj.clock.Merge(in.Clock)
	default:
		// Concurrent: conflict detection and resolution, as in Bayou.
		s.stats.Conflicts++
		merged := obj.clock.Clone()
		merged.Merge(in.Clock)
		data := s.cfg.Resolve(obj.cur, in)
		stamp := obj.cur.UnixNanos
		origin := obj.cur.Origin
		if in.UnixNanos > stamp || (in.UnixNanos == stamp && in.Origin > origin) {
			stamp, origin = in.UnixNanos, in.Origin
		}
		obj.cur = Write{Object: in.Object, Origin: origin, Clock: merged, Data: data, UnixNanos: stamp}
		obj.clock = merged
		s.cfg.Log.Logf("session", "conflict on %q resolved to origin %d %s", in.Object, origin, merged)
	}
	s.stats.Applied++
	s.notifyLocked(in.Object)
}

// notifyLocked wakes waiters whose requirement the object now meets.
// Caller holds s.mu.
func (s *Store) notifyLocked(name string) {
	obj := s.objects[name]
	kept := s.waiters[:0]
	for _, w := range s.waiters {
		if w.name == name && obj.clock.Dominates(w.min) {
			close(w.ch)
			continue
		}
		kept = append(kept, w)
	}
	s.waiters = kept
}

// WaitFor blocks until the object's clock dominates min — the mechanism
// behind the session guarantees.
func (s *Store) WaitFor(ctx context.Context, name string, min Vector) error {
	s.mu.Lock()
	obj := s.getLocked(name)
	if obj.clock.Dominates(min) {
		s.mu.Unlock()
		return nil
	}
	w := &storeWaiter{name: name, min: min.Clone(), ch: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()

	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for i, x := range s.waiters {
			if x == w {
				s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		return fmt.Errorf("session: waiting for %q to reach %s: %w", name, min, ctx.Err())
	}
}

// gossip pushes one write to every peer, best effort and concurrently.
func (s *Store) gossip(w Write) {
	buf := wire.NewWriter(64)
	buf.U8(opWrite)
	w.encode(buf)
	pkt := buf.Bytes()
	for site, ep := range s.cfg.Directory {
		if site == s.cfg.Site {
			continue
		}
		addr := mnet.JoinAddr(ep, PortSession)
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.SendTimeout)
			defer cancel()
			if err := s.port.Send(ctx, addr, pkt); err != nil {
				// Anti-entropy will repair it.
				return
			}
			s.mu.Lock()
			s.stats.GossipSent++
			s.mu.Unlock()
		}()
	}
}

// handle processes session-port traffic.
func (s *Store) handle(m mnet.Message) {
	if len(m.Data) == 0 {
		return
	}
	r := wire.NewReader(m.Data[1:])
	switch m.Data[0] {
	case opWrite:
		w := decodeWrite(r)
		if r.Err() != nil {
			return
		}
		s.mu.Lock()
		s.applyLocked(w)
		s.mu.Unlock()
	case opPullRequest:
		s.onPullRequest(m.From, r)
	case opPullReply:
		n := int(r.U16())
		for i := 0; i < n; i++ {
			w := decodeWrite(r)
			if r.Err() != nil {
				return
			}
			s.mu.Lock()
			s.applyLocked(w)
			s.mu.Unlock()
		}
	}
}

// onPullRequest ships back every object state the requester has not seen.
func (s *Store) onPullRequest(replyTo string, r *wire.Reader) {
	n := int(r.U16())
	summary := make(map[string]Vector, n)
	for i := 0; i < n; i++ {
		name := r.String16()
		summary[name] = decodeVector(r)
	}
	if r.Err() != nil {
		return
	}

	s.mu.Lock()
	var ship []Write
	for name, obj := range s.objects {
		if len(obj.clock) == 0 {
			continue
		}
		if have, ok := summary[name]; ok && have.Dominates(obj.clock) {
			continue
		}
		ship = append(ship, obj.cur)
	}
	s.stats.PullShipments += int64(len(ship))
	s.mu.Unlock()
	if len(ship) == 0 {
		return
	}

	buf := wire.NewWriter(256)
	buf.U8(opPullReply)
	buf.U16(uint16(len(ship)))
	for _, w := range ship {
		w.encode(buf)
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.SendTimeout)
	defer cancel()
	_ = s.port.Send(ctx, replyTo, buf.Bytes())
}

// antiEntropyLoop periodically pulls from one peer round-robin.
func (s *Store) antiEntropyLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.AntiEntropy)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.PullOnce()
		case <-s.stopCh:
			return
		}
	}
}

// PullOnce runs one anti-entropy exchange with the next peer in rotation.
// Exported so tests (and deterministic deployments) can drive repair
// explicitly.
func (s *Store) PullOnce() {
	peers := make([]wire.SiteID, 0, len(s.cfg.Directory))
	for site := range s.cfg.Directory {
		if site != s.cfg.Site {
			peers = append(peers, site)
		}
	}
	if len(peers) == 0 {
		return
	}
	sortSites(peers)

	s.mu.Lock()
	peer := peers[s.peerIdx%len(peers)]
	s.peerIdx++
	buf := wire.NewWriter(256)
	buf.U8(opPullRequest)
	buf.U16(uint16(len(s.objects)))
	for name, obj := range s.objects {
		buf.String16(name)
		encodeVector(buf, obj.clock)
	}
	s.stats.PullRounds++
	s.mu.Unlock()

	addr := mnet.JoinAddr(s.cfg.Directory[peer], PortSession)
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.SendTimeout)
	defer cancel()
	_ = s.port.Send(ctx, addr, buf.Bytes())
}

// sortSites orders site IDs ascending.
func sortSites(sites []wire.SiteID) {
	for i := 1; i < len(sites); i++ {
		for j := i; j > 0 && sites[j] < sites[j-1]; j-- {
			sites[j], sites[j-1] = sites[j-1], sites[j]
		}
	}
}

// Session provides Terry-style session guarantees over any store of the
// cluster: read your writes, monotonic reads, writes follow reads, and
// monotonic writes, each enforced per object via version vectors.
type Session struct {
	mu    sync.Mutex
	reads map[string]Vector
	wrote map[string]Vector
}

// NewSession starts an empty session.
func NewSession() *Session {
	return &Session{reads: make(map[string]Vector), wrote: make(map[string]Vector)}
}

// need returns the vector a read must observe for RYW + MR. Caller holds
// s.mu.
func (se *Session) needLocked(name string) Vector {
	need := Vector{}
	need.Merge(se.reads[name])
	need.Merge(se.wrote[name])
	return need
}

// Read performs a session-consistent read at the given store, blocking
// until the store has caught up with this session's past reads and writes
// of the object.
func (se *Session) Read(ctx context.Context, st *Store, name string) ([]byte, error) {
	se.mu.Lock()
	need := se.needLocked(name)
	se.mu.Unlock()

	if err := st.WaitFor(ctx, name, need); err != nil {
		return nil, err
	}
	data, clock, _ := st.Read(name)
	se.mu.Lock()
	merged := se.reads[name]
	if merged == nil {
		merged = Vector{}
	}
	merged.Merge(clock)
	se.reads[name] = merged
	se.mu.Unlock()
	return data, nil
}

// Write performs a session write at the given store, attaching the
// session's causal past (writes-follow-reads, monotonic writes).
func (se *Session) Write(ctx context.Context, st *Store, name string, data []byte) error {
	se.mu.Lock()
	deps := se.needLocked(name)
	se.mu.Unlock()

	// The issuing store must itself have seen the session's past, or the
	// new write could fail to dominate it.
	if err := st.WaitFor(ctx, name, deps); err != nil {
		return err
	}
	clock := st.Write(name, data, deps)
	se.mu.Lock()
	w := se.wrote[name]
	if w == nil {
		w = Vector{}
	}
	w.Merge(clock)
	se.wrote[name] = w
	se.mu.Unlock()
	return nil
}
