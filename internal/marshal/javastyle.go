package marshal

import (
	"fmt"

	"mocha/internal/netsim"
)

// JavaStyleCodec reproduces the JDK 1.1 marshaling path the paper's
// prototype used: a growth-doubling dynamic byte buffer written one byte
// at a time (java.io.ByteArrayOutputStream under a DataOutputStream), plus
// the calibrated interpreted-JVM cost charge. This is the codec behind
// Figure 8's "somewhat expensive for large replicas".
type JavaStyleCodec struct {
	cost netsim.CostModel
}

var _ Codec = (*JavaStyleCodec)(nil)

// NewJavaStyle builds the codec with the given cost model.
func NewJavaStyle(cost netsim.CostModel) *JavaStyleCodec {
	return &JavaStyleCodec{cost: cost}
}

// Name implements Codec.
func (j *JavaStyleCodec) Name() string { return "jdk1-generic" }

// dynBuffer mimics ByteArrayOutputStream: it starts tiny and doubles,
// copying on every growth, and is only ever appended to byte-by-byte.
type dynBuffer struct {
	buf []byte
	n   int
}

func newDynBuffer() *dynBuffer { return &dynBuffer{buf: make([]byte, 32)} }

// writeByte appends one byte, doubling the backing array when full.
func (d *dynBuffer) writeByte(b byte) {
	if d.n == len(d.buf) {
		grown := make([]byte, 2*len(d.buf))
		copy(grown, d.buf)
		d.buf = grown
	}
	d.buf[d.n] = b
	d.n++
}

func (d *dynBuffer) bytes() []byte { return d.buf[:d.n] }

// writeU32 emits a big-endian uint32 a byte at a time.
func (d *dynBuffer) writeU32(v uint32) {
	d.writeByte(byte(v >> 24))
	d.writeByte(byte(v >> 16))
	d.writeByte(byte(v >> 8))
	d.writeByte(byte(v))
}

// writeU64 emits a big-endian uint64 a byte at a time.
func (d *dynBuffer) writeU64(v uint64) {
	d.writeU32(uint32(v >> 32))
	d.writeU32(uint32(v))
}

// Marshal implements Codec.
func (j *JavaStyleCodec) Marshal(c *Content) ([]byte, error) {
	d := newDynBuffer()
	d.writeByte(byte(c.kind))
	switch c.kind {
	case KindBytes:
		d.writeU32(uint32(len(c.bytes)))
		for _, b := range c.bytes {
			d.writeByte(b)
		}
	case KindInts:
		d.writeU32(uint32(len(c.ints)))
		for _, v := range c.ints {
			d.writeU32(uint32(v))
		}
	case KindFloats:
		d.writeU32(uint32(len(c.floats)))
		for _, v := range c.floats {
			d.writeU64(floatBits(v))
		}
	case KindObject:
		blob, err := c.obj.MarshalMocha()
		if err != nil {
			return nil, fmt.Errorf("marshal: serialize object: %w", err)
		}
		d.writeU32(uint32(len(blob)))
		for _, b := range blob {
			d.writeByte(b)
		}
	default:
		return nil, fmt.Errorf("%w: kind %d", ErrCorrupt, c.kind)
	}
	out := d.bytes()
	netsim.Charge(j.cost.MarshalCost(len(out)))
	return out, nil
}

// Unmarshal implements Codec.
func (j *JavaStyleCodec) Unmarshal(b []byte, c *Content) error {
	netsim.Charge(j.cost.UnmarshalCost(len(b)))
	r := &byteReader{buf: b}
	kind, err := r.readByte()
	if err != nil {
		return err
	}
	if Kind(kind) != c.kind {
		return fmt.Errorf("%w: data is %s, content is %s", ErrKindMismatch, Kind(kind), c.kind)
	}
	count, err := r.readU32()
	if err != nil {
		return err
	}
	switch c.kind {
	case KindBytes:
		out := make([]byte, 0, count)
		for i := uint32(0); i < count; i++ {
			v, err := r.readByte()
			if err != nil {
				return err
			}
			out = append(out, v)
		}
		c.bytes = out
	case KindInts:
		out := make([]int32, 0, count)
		for i := uint32(0); i < count; i++ {
			v, err := r.readU32()
			if err != nil {
				return err
			}
			out = append(out, int32(v))
		}
		c.ints = out
	case KindFloats:
		out := make([]float64, 0, count)
		for i := uint32(0); i < count; i++ {
			v, err := r.readU64()
			if err != nil {
				return err
			}
			out = append(out, floatFromBits(v))
		}
		c.floats = out
	case KindObject:
		blob := make([]byte, 0, count)
		for i := uint32(0); i < count; i++ {
			v, err := r.readByte()
			if err != nil {
				return err
			}
			blob = append(blob, v)
		}
		if err := c.obj.UnmarshalMocha(blob); err != nil {
			return fmt.Errorf("marshal: unserialize object: %w", err)
		}
	default:
		return fmt.Errorf("%w: kind %d", ErrCorrupt, c.kind)
	}
	if r.off != len(b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b)-r.off)
	}
	c.noteReplaced()
	return nil
}

// byteReader consumes a buffer one byte at a time, like the stream reads
// of the JDK 1.1 path.
type byteReader struct {
	buf []byte
	off int
}

func (r *byteReader) readByte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, ErrCorrupt
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *byteReader) readU32() (uint32, error) {
	var v uint32
	for i := 0; i < 4; i++ {
		b, err := r.readByte()
		if err != nil {
			return 0, err
		}
		v = v<<8 | uint32(b)
	}
	return v, nil
}

func (r *byteReader) readU64() (uint64, error) {
	hi, err := r.readU32()
	if err != nil {
		return 0, err
	}
	lo, err := r.readU32()
	if err != nil {
		return 0, err
	}
	return uint64(hi)<<32 | uint64(lo), nil
}
