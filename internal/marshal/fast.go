package marshal

import (
	"encoding/binary"
	"fmt"
	"math"

	"mocha/internal/netsim"
)

// floatBits and floatFromBits convert float64 to its IEEE-754 bit pattern.
func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// FastCodec is the "custom marshaling library that is more efficient for
// our needs" the paper plans as future work: it computes the output size
// up front, allocates once, and copies elements in bulk. It emits the same
// wire format as JavaStyleCodec. Pair it with a Native or FastMarshal cost
// model; giving it the full JDK1 model would charge interpreted costs the
// bulk path does not incur.
type FastCodec struct {
	cost netsim.CostModel
}

var _ Codec = (*FastCodec)(nil)

// NewFast builds the codec with the given cost model.
func NewFast(cost netsim.CostModel) *FastCodec {
	return &FastCodec{cost: cost}
}

// Name implements Codec.
func (f *FastCodec) Name() string { return "mocha-custom" }

// Marshal implements Codec.
func (f *FastCodec) Marshal(c *Content) ([]byte, error) {
	var out []byte
	switch c.kind {
	case KindBytes:
		out = make([]byte, 5+len(c.bytes))
		header(out, c.kind, len(c.bytes))
		copy(out[5:], c.bytes)
	case KindInts:
		out = make([]byte, 5+4*len(c.ints))
		header(out, c.kind, len(c.ints))
		for i, v := range c.ints {
			binary.BigEndian.PutUint32(out[5+4*i:], uint32(v))
		}
	case KindFloats:
		out = make([]byte, 5+8*len(c.floats))
		header(out, c.kind, len(c.floats))
		for i, v := range c.floats {
			binary.BigEndian.PutUint64(out[5+8*i:], floatBits(v))
		}
	case KindObject:
		blob, err := c.obj.MarshalMocha()
		if err != nil {
			return nil, fmt.Errorf("marshal: serialize object: %w", err)
		}
		out = make([]byte, 5+len(blob))
		header(out, c.kind, len(blob))
		copy(out[5:], blob)
	default:
		return nil, fmt.Errorf("%w: kind %d", ErrCorrupt, c.kind)
	}
	netsim.Charge(f.cost.MarshalCost(len(out)))
	return out, nil
}

// Unmarshal implements Codec.
func (f *FastCodec) Unmarshal(b []byte, c *Content) error {
	netsim.Charge(f.cost.UnmarshalCost(len(b)))
	if len(b) < 5 {
		return ErrCorrupt
	}
	if Kind(b[0]) != c.kind {
		return fmt.Errorf("%w: data is %s, content is %s", ErrKindMismatch, Kind(b[0]), c.kind)
	}
	count := int(binary.BigEndian.Uint32(b[1:5]))
	body := b[5:]
	switch c.kind {
	case KindBytes:
		if len(body) != count {
			return ErrCorrupt
		}
		out := make([]byte, count)
		copy(out, body)
		c.bytes = out
	case KindInts:
		if len(body) != 4*count {
			return ErrCorrupt
		}
		out := make([]int32, count)
		for i := range out {
			out[i] = int32(binary.BigEndian.Uint32(body[4*i:]))
		}
		c.ints = out
	case KindFloats:
		if len(body) != 8*count {
			return ErrCorrupt
		}
		out := make([]float64, count)
		for i := range out {
			out[i] = floatFromBits(binary.BigEndian.Uint64(body[8*i:]))
		}
		c.floats = out
	case KindObject:
		if len(body) != count {
			return ErrCorrupt
		}
		blob := make([]byte, count)
		copy(blob, body)
		if err := c.obj.UnmarshalMocha(blob); err != nil {
			return fmt.Errorf("marshal: unserialize object: %w", err)
		}
	default:
		return fmt.Errorf("%w: kind %d", ErrCorrupt, c.kind)
	}
	c.noteReplaced()
	return nil
}

// header writes the shared [kind u8][count u32] prefix.
func header(out []byte, k Kind, count int) {
	out[0] = byte(k)
	binary.BigEndian.PutUint32(out[1:5], uint32(count))
}
