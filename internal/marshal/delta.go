package marshal

// This file implements the byte-range machinery behind delta replica
// transfer: computing which ranges of a marshaled blob changed between two
// versions (either from the Content's dirty tracking or by comparing the
// blobs directly) and rebuilding a blob from a base copy plus patches. The
// coordinates are always those of the marshaled wire blob ([kind u8]
// [count u32][body]), the one representation both codecs share.

import (
	"fmt"
	"hash/crc32"
	"sort"
)

// Range marks Len bytes starting at Off of a replica's marshaled state.
type Range struct {
	Off int
	Len int
}

// End returns the exclusive end offset.
func (r Range) End() int { return r.Off + r.Len }

// PatchOp replaces the bytes at Off with Data. Offsets are in the
// coordinates of the new (patched) blob.
type PatchOp struct {
	Off  int
	Data []byte
}

// diffMergeGap coalesces differing runs separated by fewer identical bytes
// than this: each patch op costs 8 bytes of framing on the wire, so
// shipping a short unchanged gap inline is cheaper than splitting the op.
const diffMergeGap = 16

// DiffRanges compares two marshaled blobs and returns the ranges of new
// that must be written over old to reproduce it, nearby runs coalesced.
// Equal blobs yield nil. Blobs of different lengths yield one splice range
// from the first differing byte to the end of new (possibly empty, when
// new is a strict prefix of old).
func DiffRanges(old, new []byte) []Range {
	if len(old) != len(new) {
		p := commonPrefix(old, new)
		return []Range{{Off: p, Len: len(new) - p}}
	}
	var runs []Range
	for i := 0; i < len(new); {
		if old[i] == new[i] {
			i++
			continue
		}
		start := i
		for i < len(new) && old[i] != new[i] {
			i++
		}
		if n := len(runs); n > 0 && start-runs[n-1].End() < diffMergeGap {
			runs[n-1].Len = i - runs[n-1].Off
		} else {
			runs = append(runs, Range{Off: start, Len: i - start})
		}
	}
	return runs
}

func commonPrefix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// MergeRanges sorts rs, clips each range to [0, size), and unions ranges
// that overlap or touch. The input slice is not modified.
func MergeRanges(rs []Range, size int) []Range {
	if len(rs) == 0 {
		return nil
	}
	sorted := make([]Range, 0, len(rs))
	for _, r := range rs {
		if r.Off < 0 {
			r.Len += r.Off
			r.Off = 0
		}
		if r.End() > size {
			r.Len = size - r.Off
		}
		if r.Len > 0 {
			sorted = append(sorted, r)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Off < sorted[j].Off })
	var out []Range
	for _, r := range sorted {
		if n := len(out); n > 0 && r.Off <= out[n-1].End() {
			if r.End() > out[n-1].End() {
				out[n-1].Len = r.End() - out[n-1].Off
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}

// RangeBytes reports the total payload bytes the ranges cover.
func RangeBytes(rs []Range) int {
	n := 0
	for _, r := range rs {
		n += r.Len
	}
	return n
}

// ApplyPatch rebuilds a blob of newLen bytes from a base copy plus patch
// ops: the base is copied (truncated or zero-extended to newLen) and each
// op's bytes are written over it. Ops outside [0, newLen) are rejected.
func ApplyPatch(base []byte, newLen int, ops []PatchOp) ([]byte, error) {
	if newLen < 0 {
		return nil, fmt.Errorf("marshal: negative patched length %d", newLen)
	}
	out := make([]byte, newLen)
	copy(out, base)
	for _, op := range ops {
		if op.Off < 0 || op.Off+len(op.Data) > newLen {
			return nil, fmt.Errorf("marshal: patch op [%d,%d) outside blob of %d bytes",
				op.Off, op.Off+len(op.Data), newLen)
		}
		copy(out[op.Off:], op.Data)
	}
	return out, nil
}

// Checksum is the IEEE CRC-32 the delta path uses to verify a patched blob
// matches the sender's copy.
func Checksum(b []byte) uint32 { return crc32.ChecksumIEEE(b) }
