package marshal

import (
	"bytes"
	"math/rand"
	"testing"

	"mocha/internal/netsim"
)

// patchFromRanges builds the patch ops a sender would ship for the given
// ranges of the new blob.
func patchFromRanges(newBlob []byte, rs []Range) []PatchOp {
	ops := make([]PatchOp, 0, len(rs))
	for _, r := range rs {
		ops = append(ops, PatchOp{Off: r.Off, Data: newBlob[r.Off:r.End()]})
	}
	return ops
}

func TestDiffRangesEqualBlobs(t *testing.T) {
	b := []byte("same content either side")
	if got := DiffRanges(b, append([]byte(nil), b...)); got != nil {
		t.Fatalf("DiffRanges on equal blobs = %v, want nil", got)
	}
}

func TestDiffRangesSmallWrite(t *testing.T) {
	old := make([]byte, 4096)
	new := append([]byte(nil), old...)
	copy(new[100:], []byte("dirty"))
	new[2000] = 0xFF

	rs := DiffRanges(old, new)
	if len(rs) != 2 {
		t.Fatalf("ranges = %v, want two distinct runs", rs)
	}
	if rs[0].Off != 100 || rs[0].Len != 5 {
		t.Errorf("first range = %v, want {100 5}", rs[0])
	}
	if rs[1].Off != 2000 || rs[1].Len != 1 {
		t.Errorf("second range = %v, want {2000 1}", rs[1])
	}
	if got := RangeBytes(rs); got != 6 {
		t.Errorf("RangeBytes = %d, want 6", got)
	}
}

func TestDiffRangesCoalescesNearbyRuns(t *testing.T) {
	old := make([]byte, 256)
	new := append([]byte(nil), old...)
	new[10] = 1
	new[20] = 1 // 9 identical bytes apart: inside the merge gap
	rs := DiffRanges(old, new)
	if len(rs) != 1 || rs[0].Off != 10 || rs[0].Len != 11 {
		t.Fatalf("ranges = %v, want one coalesced {10 11}", rs)
	}
}

func TestDiffRangesResize(t *testing.T) {
	old := []byte("shared prefix, old tail")
	new := []byte("shared prefix, a considerably longer tail")
	rs := DiffRanges(old, new)
	if len(rs) != 1 {
		t.Fatalf("ranges = %v, want one splice", rs)
	}
	if rs[0].End() != len(new) {
		t.Fatalf("splice end = %d, want %d", rs[0].End(), len(new))
	}
	// Shrink to a strict prefix: the splice is empty but still communicates
	// the truncation via the patched length.
	rs = DiffRanges(new, new[:10])
	if len(rs) != 1 || rs[0].Len != 0 || rs[0].Off != 10 {
		t.Fatalf("shrink ranges = %v, want {10 0}", rs)
	}
}

func TestApplyPatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		oldLen := rng.Intn(2000)
		old := make([]byte, oldLen)
		rng.Read(old)
		new := append([]byte(nil), old...)
		// Random mutation: in-place writes, sometimes a resize.
		switch rng.Intn(3) {
		case 0:
			for k := rng.Intn(5); k >= 0 && len(new) > 0; k-- {
				off := rng.Intn(len(new))
				n := rng.Intn(len(new) - off)
				for i := 0; i < n; i++ {
					new[off+i] = byte(rng.Intn(256))
				}
			}
		case 1:
			extra := make([]byte, rng.Intn(500))
			rng.Read(extra)
			new = append(new, extra...)
		case 2:
			new = new[:rng.Intn(len(new)+1)]
		}
		rs := DiffRanges(old, new)
		got, err := ApplyPatch(old, len(new), patchFromRanges(new, rs))
		if err != nil {
			t.Fatalf("trial %d: ApplyPatch: %v", trial, err)
		}
		if !bytes.Equal(got, new) {
			t.Fatalf("trial %d: patched blob differs from new blob", trial)
		}
		if Checksum(got) != Checksum(new) {
			t.Fatalf("trial %d: checksum mismatch on equal blobs", trial)
		}
	}
}

func TestApplyPatchRejectsOutOfBounds(t *testing.T) {
	base := make([]byte, 10)
	if _, err := ApplyPatch(base, 10, []PatchOp{{Off: 8, Data: []byte{1, 2, 3}}}); err == nil {
		t.Fatal("op past end accepted")
	}
	if _, err := ApplyPatch(base, 10, []PatchOp{{Off: -1, Data: []byte{1}}}); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := ApplyPatch(base, -1, nil); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestMergeRanges(t *testing.T) {
	got := MergeRanges([]Range{{Off: 50, Len: 10}, {Off: 5, Len: 10}, {Off: 12, Len: 4}, {Off: 55, Len: 100}}, 100)
	want := []Range{{Off: 5, Len: 11}, {Off: 50, Len: 50}}
	if len(got) != len(want) {
		t.Fatalf("MergeRanges = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MergeRanges = %v, want %v", got, want)
		}
	}
	if MergeRanges(nil, 10) != nil {
		t.Fatal("empty input should merge to nil")
	}
}

func TestDirtyTrackingTrust(t *testing.T) {
	// A constructor aliases the caller's array, so tracking starts
	// untrusted.
	buf := make([]byte, 100)
	c := Bytes(buf)
	if _, trusted := c.DirtySnapshot(); trusted {
		t.Fatal("freshly constructed content should not be trusted")
	}

	// Unmarshal installs arrays no caller has seen: tracking becomes
	// trusted and the tracked mutators record exact blob ranges.
	codec := NewFast(netsim.Native())
	blob, err := codec.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := codec.Unmarshal(blob, c); err != nil {
		t.Fatal(err)
	}
	if _, trusted := c.DirtySnapshot(); !trusted {
		t.Fatal("content should be trusted after unmarshal")
	}
	if err := c.SetByteAt(10, 0xAB); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteBytesAt(20, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	ranges, trusted := c.DirtySnapshot()
	if !trusted {
		t.Fatal("tracked mutators should keep content trusted")
	}
	merged := MergeRanges(ranges, 105)
	want := []Range{{Off: headerSize + 10, Len: 1}, {Off: headerSize + 20, Len: 3}}
	if len(merged) != 2 || merged[0] != want[0] || merged[1] != want[1] {
		t.Fatalf("ranges = %v, want %v", merged, want)
	}

	// The recorded ranges must reproduce the new marshaled blob.
	newBlob, err := codec.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	patched, err := ApplyPatch(blob, len(newBlob), patchFromRanges(newBlob, merged))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(patched, newBlob) {
		t.Fatal("patch from tracked ranges does not reproduce the new blob")
	}

	// ResetDirty starts a new epoch.
	c.ResetDirty()
	if ranges, _ := c.DirtySnapshot(); len(ranges) != 0 {
		t.Fatalf("ranges after reset = %v, want none", ranges)
	}

	// A raw accessor hands out an aliasing slice: trust is lost until the
	// next unmarshal.
	_ = c.BytesData()
	if _, trusted := c.DirtySnapshot(); trusted {
		t.Fatal("content should be untrusted after BytesData")
	}
	if err := codec.Unmarshal(newBlob, c); err != nil {
		t.Fatal(err)
	}
	if _, trusted := c.DirtySnapshot(); !trusted {
		t.Fatal("trust should return after unmarshal replaces the array")
	}
}

func TestDirtyTrackingFullReplaceAndKinds(t *testing.T) {
	codec := NewFast(netsim.Native())

	ic := Ints(make([]int32, 8))
	blob, err := codec.Marshal(ic)
	if err != nil {
		t.Fatal(err)
	}
	if err := codec.Unmarshal(blob, ic); err != nil {
		t.Fatal(err)
	}
	if err := ic.SetIntAt(3, 77); err != nil {
		t.Fatal(err)
	}
	ranges, trusted := ic.DirtySnapshot()
	if !trusted || len(ranges) != 1 || ranges[0] != (Range{Off: headerSize + 12, Len: 4}) {
		t.Fatalf("int ranges = %v trusted=%v", ranges, trusted)
	}
	// Full replacement poisons the epoch.
	if err := ic.SetInts(make([]int32, 8)); err != nil {
		t.Fatal(err)
	}
	if _, trusted := ic.DirtySnapshot(); trusted {
		t.Fatal("SetInts should make tracking untrusted")
	}

	fc := Floats(make([]float64, 4))
	blob, err = codec.Marshal(fc)
	if err != nil {
		t.Fatal(err)
	}
	if err := codec.Unmarshal(blob, fc); err != nil {
		t.Fatal(err)
	}
	if err := fc.SetFloatAt(2, 2.5); err != nil {
		t.Fatal(err)
	}
	ranges, trusted = fc.DirtySnapshot()
	if !trusted || len(ranges) != 1 || ranges[0] != (Range{Off: headerSize + 16, Len: 8}) {
		t.Fatalf("float ranges = %v trusted=%v", ranges, trusted)
	}

	// Object content is serialized opaquely and never trusted.
	oc := Object(&blobObject{})
	if _, trusted := oc.DirtySnapshot(); trusted {
		t.Fatal("object content must never be trusted")
	}

	// Mutator kind and bounds checks.
	if err := ic.SetByteAt(0, 1); err == nil {
		t.Fatal("SetByteAt on ints accepted")
	}
	if err := ic.SetIntAt(99, 1); err == nil {
		t.Fatal("out-of-range SetIntAt accepted")
	}
	if err := fc.SetFloatAt(-1, 0); err == nil {
		t.Fatal("negative SetFloatAt accepted")
	}
}

// blobObject is a minimal Serializable for the object-kind test.
type blobObject struct{ data []byte }

func (b *blobObject) MarshalMocha() ([]byte, error) { return b.data, nil }
func (b *blobObject) UnmarshalMocha(d []byte) error { b.data = d; return nil }
