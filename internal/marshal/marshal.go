// Package marshal converts shared-object state to and from byte arrays for
// network transfer, reproducing both of the paper's marshaling regimes.
//
// Mocha's Replica objects hold "homogeneous arrays of primitive data types
// as well as bona fide Java objects which are serializable". The paper's
// prototype relied on "the generic data marshaling constructs provided by
// Java JDK 1.1", which "utilize dynamic arrays and marshal a single byte
// at a time" — making marshaling "a relatively costly operation" for large
// replicas (Figure 8) — and planned "a custom marshaling library that is
// more efficient" as future work. JavaStyleCodec reproduces the former
// faithfully (growth-doubling dynamic buffer, byte-at-a-time element
// copies, plus the calibrated JDK1 cost charge); FastCodec is the planned
// custom library (single-allocation bulk encoding). Both produce the same
// wire format, so they interoperate.
package marshal

import (
	"errors"
	"fmt"
)

// Kind identifies what a replica's content holds.
type Kind uint8

// Replica content kinds: the three homogeneous primitive arrays the paper
// names (byte, int, double) plus serialized complex objects.
const (
	KindBytes Kind = iota + 1
	KindInts
	KindFloats
	KindObject
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindBytes:
		return "bytes"
	case KindInts:
		return "ints"
	case KindFloats:
		return "floats"
	case KindObject:
		return "object"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Serializable is the hook complex shared objects implement, standing in
// for Java object serialization: the Replica subclasses that MochaGen
// generates override serialize()/unserialize(), and the runtime calls them
// "automatically ... when it needs to marshal or unmarshal these shared
// objects".
type Serializable interface {
	// MarshalMocha serializes the object's state.
	MarshalMocha() ([]byte, error)
	// UnmarshalMocha replaces the object's state from serialized form.
	UnmarshalMocha(data []byte) error
}

// Content is the typed payload of one replica.
type Content struct {
	kind   Kind
	bytes  []byte
	ints   []int32
	floats []float64
	obj    Serializable
}

// Bytes creates byte-array content. The content aliases b so application
// writes between lock and unlock are visible to the runtime.
func Bytes(b []byte) *Content { return &Content{kind: KindBytes, bytes: b} }

// Ints creates int-array content.
func Ints(v []int32) *Content { return &Content{kind: KindInts, ints: v} }

// Floats creates double-array content.
func Floats(v []float64) *Content { return &Content{kind: KindFloats, floats: v} }

// Object creates complex-object content around a Serializable.
func Object(s Serializable) *Content { return &Content{kind: KindObject, obj: s} }

// Kind reports the content kind.
func (c *Content) Kind() Kind { return c.kind }

// Count reports the element count (bytes of serialized state for objects):
// the paper's "signature methods that enable the application to determine
// the type and amount of data the Replica represents".
func (c *Content) Count() int {
	switch c.kind {
	case KindBytes:
		return len(c.bytes)
	case KindInts:
		return len(c.ints)
	case KindFloats:
		return len(c.floats)
	case KindObject:
		b, err := c.obj.MarshalMocha()
		if err != nil {
			return 0
		}
		return len(b)
	default:
		return 0
	}
}

// SizeBytes reports the approximate marshaled size, used for cost
// accounting and statistics.
func (c *Content) SizeBytes() int {
	switch c.kind {
	case KindBytes:
		return len(c.bytes)
	case KindInts:
		return 4 * len(c.ints)
	case KindFloats:
		return 8 * len(c.floats)
	case KindObject:
		return c.Count()
	default:
		return 0
	}
}

// BytesData returns the byte array (nil for other kinds). Mutations are
// visible to the runtime, as with a Java array reference.
func (c *Content) BytesData() []byte { return c.bytes }

// IntsData returns the int array (nil for other kinds).
func (c *Content) IntsData() []int32 { return c.ints }

// FloatsData returns the float array (nil for other kinds).
func (c *Content) FloatsData() []float64 { return c.floats }

// ObjectData returns the complex object (nil for other kinds).
func (c *Content) ObjectData() Serializable { return c.obj }

// SetBytes replaces byte-array content; replicas "are not required to
// represent a fixed size of data".
func (c *Content) SetBytes(b []byte) error {
	if c.kind != KindBytes {
		return fmt.Errorf("marshal: content is %s, not bytes", c.kind)
	}
	c.bytes = b
	return nil
}

// SetInts replaces int-array content.
func (c *Content) SetInts(v []int32) error {
	if c.kind != KindInts {
		return fmt.Errorf("marshal: content is %s, not ints", c.kind)
	}
	c.ints = v
	return nil
}

// SetFloats replaces float-array content.
func (c *Content) SetFloats(v []float64) error {
	if c.kind != KindFloats {
		return fmt.Errorf("marshal: content is %s, not floats", c.kind)
	}
	c.floats = v
	return nil
}

// Codec marshals replica content to and from byte arrays.
type Codec interface {
	// Name labels the codec in benchmark output.
	Name() string
	// Marshal serializes content.
	Marshal(c *Content) ([]byte, error)
	// Unmarshal replaces content state from serialized form. The content
	// must have the same kind as the serialized data (replicas never
	// change kind after creation).
	Unmarshal(b []byte, c *Content) error
}

// ErrCorrupt reports undecodable serialized content.
var ErrCorrupt = errors.New("marshal: corrupt data")

// ErrKindMismatch reports unmarshaling into content of a different kind.
var ErrKindMismatch = errors.New("marshal: kind mismatch")
