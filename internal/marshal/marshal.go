// Package marshal converts shared-object state to and from byte arrays for
// network transfer, reproducing both of the paper's marshaling regimes.
//
// Mocha's Replica objects hold "homogeneous arrays of primitive data types
// as well as bona fide Java objects which are serializable". The paper's
// prototype relied on "the generic data marshaling constructs provided by
// Java JDK 1.1", which "utilize dynamic arrays and marshal a single byte
// at a time" — making marshaling "a relatively costly operation" for large
// replicas (Figure 8) — and planned "a custom marshaling library that is
// more efficient" as future work. JavaStyleCodec reproduces the former
// faithfully (growth-doubling dynamic buffer, byte-at-a-time element
// copies, plus the calibrated JDK1 cost charge); FastCodec is the planned
// custom library (single-allocation bulk encoding). Both produce the same
// wire format, so they interoperate.
package marshal

import (
	"errors"
	"fmt"
)

// Kind identifies what a replica's content holds.
type Kind uint8

// Replica content kinds: the three homogeneous primitive arrays the paper
// names (byte, int, double) plus serialized complex objects.
const (
	KindBytes Kind = iota + 1
	KindInts
	KindFloats
	KindObject
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindBytes:
		return "bytes"
	case KindInts:
		return "ints"
	case KindFloats:
		return "floats"
	case KindObject:
		return "object"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Serializable is the hook complex shared objects implement, standing in
// for Java object serialization: the Replica subclasses that MochaGen
// generates override serialize()/unserialize(), and the runtime calls them
// "automatically ... when it needs to marshal or unmarshal these shared
// objects".
type Serializable interface {
	// MarshalMocha serializes the object's state.
	MarshalMocha() ([]byte, error)
	// UnmarshalMocha replaces the object's state from serialized form.
	UnmarshalMocha(data []byte) error
}

// Content is the typed payload of one replica.
//
// Content records dirty byte ranges (in marshaled-blob coordinates) for
// writes made through the element mutators, giving the delta transfer path
// exact write boundaries as entry consistency promises. Any escape hatch
// that lets the application mutate state invisibly — the aliased slice a
// constructor or full-replace setter received, or a raw-array accessor —
// marks the content exposed, after which the recorded ranges are untrusted
// and the runtime falls back to byte-diffing consecutive marshaled blobs.
type Content struct {
	kind   Kind
	bytes  []byte
	ints   []int32
	floats []float64
	obj    Serializable

	// dirty accumulates tracked writes since the last ResetDirty, in
	// marshaled-blob byte coordinates.
	dirty []Range
	// dirtyAll marks a whole-content replacement in this epoch.
	dirtyAll bool
	// exposed is set while the application may hold a raw reference into
	// the content's storage; it clears only when Unmarshal installs fresh
	// arrays no caller has seen.
	exposed bool
}

// Bytes creates byte-array content. The content aliases b so application
// writes between lock and unlock are visible to the runtime.
func Bytes(b []byte) *Content { return &Content{kind: KindBytes, bytes: b, exposed: true} }

// Ints creates int-array content.
func Ints(v []int32) *Content { return &Content{kind: KindInts, ints: v, exposed: true} }

// Floats creates double-array content.
func Floats(v []float64) *Content { return &Content{kind: KindFloats, floats: v, exposed: true} }

// Object creates complex-object content around a Serializable. Object
// state is serialized opaquely, so object content never has trusted dirty
// ranges.
func Object(s Serializable) *Content { return &Content{kind: KindObject, obj: s, exposed: true} }

// Kind reports the content kind.
func (c *Content) Kind() Kind { return c.kind }

// Count reports the element count (bytes of serialized state for objects):
// the paper's "signature methods that enable the application to determine
// the type and amount of data the Replica represents".
func (c *Content) Count() int {
	switch c.kind {
	case KindBytes:
		return len(c.bytes)
	case KindInts:
		return len(c.ints)
	case KindFloats:
		return len(c.floats)
	case KindObject:
		b, err := c.obj.MarshalMocha()
		if err != nil {
			return 0
		}
		return len(b)
	default:
		return 0
	}
}

// SizeBytes reports the approximate marshaled size, used for cost
// accounting and statistics.
func (c *Content) SizeBytes() int {
	switch c.kind {
	case KindBytes:
		return len(c.bytes)
	case KindInts:
		return 4 * len(c.ints)
	case KindFloats:
		return 8 * len(c.floats)
	case KindObject:
		return c.Count()
	default:
		return 0
	}
}

// BytesData returns the byte array (nil for other kinds). Mutations are
// visible to the runtime, as with a Java array reference, so handing the
// slice out makes the dirty tracking untrusted until fresh state arrives.
func (c *Content) BytesData() []byte {
	c.exposed = true
	return c.bytes
}

// IntsData returns the int array (nil for other kinds).
func (c *Content) IntsData() []int32 {
	c.exposed = true
	return c.ints
}

// FloatsData returns the float array (nil for other kinds).
func (c *Content) FloatsData() []float64 {
	c.exposed = true
	return c.floats
}

// ObjectData returns the complex object (nil for other kinds).
func (c *Content) ObjectData() Serializable { return c.obj }

// headerSize is the [kind u8][count u32] prefix both codecs emit before
// the element body, the origin of the dirty ranges' blob coordinates.
const headerSize = 5

// SetByteAt writes one byte element, recording the write for delta
// transfer.
func (c *Content) SetByteAt(i int, v byte) error {
	if c.kind != KindBytes {
		return fmt.Errorf("marshal: content is %s, not bytes", c.kind)
	}
	if i < 0 || i >= len(c.bytes) {
		return fmt.Errorf("marshal: byte index %d out of range [0,%d)", i, len(c.bytes))
	}
	c.bytes[i] = v
	c.addDirty(Range{Off: headerSize + i, Len: 1})
	return nil
}

// WriteBytesAt copies p over the byte array at offset off, recording the
// write for delta transfer.
func (c *Content) WriteBytesAt(off int, p []byte) error {
	if c.kind != KindBytes {
		return fmt.Errorf("marshal: content is %s, not bytes", c.kind)
	}
	if off < 0 || off+len(p) > len(c.bytes) {
		return fmt.Errorf("marshal: byte write [%d,%d) out of range [0,%d)", off, off+len(p), len(c.bytes))
	}
	copy(c.bytes[off:], p)
	c.addDirty(Range{Off: headerSize + off, Len: len(p)})
	return nil
}

// SetIntAt writes one int element, recording the write for delta transfer.
func (c *Content) SetIntAt(i int, v int32) error {
	if c.kind != KindInts {
		return fmt.Errorf("marshal: content is %s, not ints", c.kind)
	}
	if i < 0 || i >= len(c.ints) {
		return fmt.Errorf("marshal: int index %d out of range [0,%d)", i, len(c.ints))
	}
	c.ints[i] = v
	c.addDirty(Range{Off: headerSize + 4*i, Len: 4})
	return nil
}

// SetFloatAt writes one double element, recording the write for delta
// transfer.
func (c *Content) SetFloatAt(i int, v float64) error {
	if c.kind != KindFloats {
		return fmt.Errorf("marshal: content is %s, not floats", c.kind)
	}
	if i < 0 || i >= len(c.floats) {
		return fmt.Errorf("marshal: float index %d out of range [0,%d)", i, len(c.floats))
	}
	c.floats[i] = v
	c.addDirty(Range{Off: headerSize + 8*i, Len: 8})
	return nil
}

func (c *Content) addDirty(r Range) {
	// Extend the previous range when writes walk forward contiguously, the
	// common sequential-update pattern.
	if n := len(c.dirty); n > 0 && r.Off <= c.dirty[n-1].End() && r.Off >= c.dirty[n-1].Off {
		if r.End() > c.dirty[n-1].End() {
			c.dirty[n-1].Len = r.End() - c.dirty[n-1].Off
		}
		return
	}
	c.dirty = append(c.dirty, r)
}

// DirtySnapshot returns the dirty ranges recorded since the last
// ResetDirty and whether they are trustworthy as the complete set of
// changes. They are not trusted when the application may have written
// through a raw reference (exposed), after a whole-content replacement,
// or for opaque object content; the caller then byte-diffs marshaled
// blobs instead.
func (c *Content) DirtySnapshot() (ranges []Range, trusted bool) {
	return c.dirty, !c.exposed && !c.dirtyAll && c.kind != KindObject
}

// ResetDirty starts a new dirty-tracking epoch, typically right after the
// runtime captured a marshaled snapshot of the content.
func (c *Content) ResetDirty() {
	c.dirty = nil
	c.dirtyAll = false
}

// noteReplaced records that Unmarshal installed fresh arrays: nothing the
// application holds aliases the new state, so tracking starts clean and
// trusted.
func (c *Content) noteReplaced() {
	c.dirty = nil
	c.dirtyAll = false
	c.exposed = false
}

// SetBytes replaces byte-array content; replicas "are not required to
// represent a fixed size of data".
func (c *Content) SetBytes(b []byte) error {
	if c.kind != KindBytes {
		return fmt.Errorf("marshal: content is %s, not bytes", c.kind)
	}
	c.bytes = b
	c.dirtyAll = true
	c.exposed = true
	return nil
}

// SetInts replaces int-array content.
func (c *Content) SetInts(v []int32) error {
	if c.kind != KindInts {
		return fmt.Errorf("marshal: content is %s, not ints", c.kind)
	}
	c.ints = v
	c.dirtyAll = true
	c.exposed = true
	return nil
}

// SetFloats replaces float-array content.
func (c *Content) SetFloats(v []float64) error {
	if c.kind != KindFloats {
		return fmt.Errorf("marshal: content is %s, not floats", c.kind)
	}
	c.floats = v
	c.dirtyAll = true
	c.exposed = true
	return nil
}

// Codec marshals replica content to and from byte arrays.
type Codec interface {
	// Name labels the codec in benchmark output.
	Name() string
	// Marshal serializes content.
	Marshal(c *Content) ([]byte, error)
	// Unmarshal replaces content state from serialized form. The content
	// must have the same kind as the serialized data (replicas never
	// change kind after creation).
	Unmarshal(b []byte, c *Content) error
}

// ErrCorrupt reports undecodable serialized content.
var ErrCorrupt = errors.New("marshal: corrupt data")

// ErrKindMismatch reports unmarshaling into content of a different kind.
var ErrKindMismatch = errors.New("marshal: kind mismatch")
