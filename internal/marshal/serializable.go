package marshal

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
)

// StringValue shares a string the way the paper's generated StringReplica
// shares a java.lang.String: the whole value is (re)serialized on every
// transfer. Access is guarded by a mutex because the application mutates
// it between lock and unlock while daemon threads marshal it for pushes.
type StringValue struct {
	mu sync.Mutex
	s  string
}

var _ Serializable = (*StringValue)(nil)

// NewStringValue builds a shareable string.
func NewStringValue(s string) *StringValue { return &StringValue{s: s} }

// Get returns the current string.
func (v *StringValue) Get() string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.s
}

// Set replaces the string; the new value propagates at the next unlock.
func (v *StringValue) Set(s string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.s = s
}

// MarshalMocha implements Serializable.
func (v *StringValue) MarshalMocha() ([]byte, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return []byte(v.s), nil
}

// UnmarshalMocha implements Serializable.
func (v *StringValue) UnmarshalMocha(data []byte) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.s = string(data)
	return nil
}

// GobValue wraps any gob-encodable Go value as a Serializable, the
// generic-reflection equivalent of Java object serialization: convenient,
// works for everything, slower than generated code. For the optimized
// path, cmd/mochagen generates explicit MarshalMocha/UnmarshalMocha
// methods instead, mirroring how "more experienced Java users are
// permitted to replace the code that the MochaGen tool generates ... with
// more optimized code".
type GobValue[T any] struct {
	mu sync.Mutex
	v  T
}

// NewGobValue wraps an initial value.
func NewGobValue[T any](v T) *GobValue[T] { return &GobValue[T]{v: v} }

// Get returns the current value.
func (g *GobValue[T]) Get() T {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Set replaces the value.
func (g *GobValue[T]) Set(v T) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v = v
}

// Update applies a mutation function atomically.
func (g *GobValue[T]) Update(f func(*T)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	f(&g.v)
}

// MarshalMocha implements Serializable.
func (g *GobValue[T]) MarshalMocha() ([]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&g.v); err != nil {
		return nil, fmt.Errorf("marshal: gob encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalMocha implements Serializable.
func (g *GobValue[T]) UnmarshalMocha(data []byte) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	var v T
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v); err != nil {
		return fmt.Errorf("marshal: gob decode: %w", err)
	}
	g.v = v
	return nil
}
