package marshal

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"mocha/internal/netsim"
)

// codecs under test; both must produce interoperable output.
func testCodecs() []Codec {
	return []Codec{
		NewJavaStyle(netsim.Native()),
		NewFast(netsim.Native()),
	}
}

func TestRoundTripAllKinds(t *testing.T) {
	contents := []struct {
		name string
		make func() *Content
		get  func(c *Content) any
	}{
		{
			name: "bytes",
			make: func() *Content { return Bytes([]byte{0, 1, 2, 255, 128}) },
			get:  func(c *Content) any { return c.BytesData() },
		},
		{
			name: "ints",
			make: func() *Content { return Ints([]int32{0, -1, math.MaxInt32, math.MinInt32, 42}) },
			get:  func(c *Content) any { return c.IntsData() },
		},
		{
			name: "floats",
			make: func() *Content { return Floats([]float64{0, -1.5, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64}) },
			get:  func(c *Content) any { return c.FloatsData() },
		},
		{
			name: "object",
			make: func() *Content { return Object(NewStringValue("Good Choice")) },
			get:  func(c *Content) any { return c.ObjectData().(*StringValue).Get() },
		},
	}
	for _, codec := range testCodecs() {
		for _, tc := range contents {
			t.Run(codec.Name()+"/"+tc.name, func(t *testing.T) {
				src := tc.make()
				blob, err := codec.Marshal(src)
				if err != nil {
					t.Fatalf("Marshal: %v", err)
				}
				dst := tc.make()
				zero(dst)
				if err := codec.Unmarshal(blob, dst); err != nil {
					t.Fatalf("Unmarshal: %v", err)
				}
				if !reflect.DeepEqual(tc.get(tc.make()), tc.get(dst)) {
					t.Fatalf("round trip mismatch: %v vs %v", tc.get(tc.make()), tc.get(dst))
				}
			})
		}
	}
}

// zero clears content state so the round trip must reconstruct it.
func zero(c *Content) {
	switch c.kind {
	case KindBytes:
		c.bytes = nil
	case KindInts:
		c.ints = nil
	case KindFloats:
		c.floats = nil
	case KindObject:
		if s, ok := c.obj.(*StringValue); ok {
			s.Set("")
		}
	}
}

func TestCodecInterop(t *testing.T) {
	// JavaStyle output must unmarshal with Fast and vice versa.
	java := NewJavaStyle(netsim.Native())
	fast := NewFast(netsim.Native())
	src := Ints([]int32{7, -9, 11})

	blob, err := java.Marshal(src)
	if err != nil {
		t.Fatal(err)
	}
	dst := Ints(nil)
	if err := fast.Unmarshal(blob, dst); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dst.IntsData(), src.IntsData()) {
		t.Fatalf("java->fast mismatch: %v", dst.IntsData())
	}

	blob2, err := fast.Marshal(src)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob2) != string(blob) {
		t.Fatal("codecs produce different wire formats")
	}
	dst2 := Ints(nil)
	if err := java.Unmarshal(blob2, dst2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dst2.IntsData(), src.IntsData()) {
		t.Fatalf("fast->java mismatch: %v", dst2.IntsData())
	}
}

func TestKindMismatch(t *testing.T) {
	for _, codec := range testCodecs() {
		blob, err := codec.Marshal(Bytes([]byte{1}))
		if err != nil {
			t.Fatal(err)
		}
		if err := codec.Unmarshal(blob, Ints(nil)); !errors.Is(err, ErrKindMismatch) {
			t.Fatalf("%s: err = %v, want ErrKindMismatch", codec.Name(), err)
		}
	}
}

func TestCorruptData(t *testing.T) {
	for _, codec := range testCodecs() {
		tests := [][]byte{
			nil,
			{byte(KindInts)},                    // missing count
			{byte(KindInts), 0, 0, 0, 5, 1, 2},  // truncated elements
			{99, 0, 0, 0, 0},                    // unknown kind
			{byte(KindBytes), 0, 0, 0, 1, 7, 7}, // trailing bytes
		}
		for i, blob := range tests {
			c := Ints(nil)
			if i >= 3 {
				c = Bytes(nil)
			}
			if i == 3 {
				c = &Content{kind: Kind(99)}
			}
			if err := codec.Unmarshal(blob, c); err == nil {
				t.Errorf("%s: corrupt case %d decoded", codec.Name(), i)
			}
		}
	}
}

func TestGrowShrink(t *testing.T) {
	// "the amount of shared data contained in a Replica may grow and
	// shrink as the needs of the Replica vary".
	codec := NewFast(netsim.Native())
	c := Ints([]int32{1, 2, 3})
	if err := c.SetInts([]int32{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	blob, err := codec.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	dst := Ints(nil)
	if err := codec.Unmarshal(blob, dst); err != nil {
		t.Fatal(err)
	}
	if len(dst.IntsData()) != 8 {
		t.Fatalf("grown replica has %d elements", len(dst.IntsData()))
	}
	if err := c.SetBytes(nil); err == nil {
		t.Fatal("kind change allowed")
	}
}

func TestSignatureMethods(t *testing.T) {
	tests := []struct {
		c     *Content
		kind  Kind
		count int
		size  int
	}{
		{c: Bytes(make([]byte, 10)), kind: KindBytes, count: 10, size: 10},
		{c: Ints(make([]int32, 10)), kind: KindInts, count: 10, size: 40},
		{c: Floats(make([]float64, 10)), kind: KindFloats, count: 10, size: 80},
		{c: Object(NewStringValue("abcd")), kind: KindObject, count: 4, size: 4},
	}
	for _, tt := range tests {
		if tt.c.Kind() != tt.kind {
			t.Errorf("Kind = %v, want %v", tt.c.Kind(), tt.kind)
		}
		if tt.c.Count() != tt.count {
			t.Errorf("%v: Count = %d, want %d", tt.kind, tt.c.Count(), tt.count)
		}
		if tt.c.SizeBytes() != tt.size {
			t.Errorf("%v: SizeBytes = %d, want %d", tt.kind, tt.c.SizeBytes(), tt.size)
		}
	}
}

func TestGobValue(t *testing.T) {
	type setting struct {
		Flatware, Plate, Glass int
		Comment                string
	}
	v := NewGobValue(setting{Flatware: 1, Comment: "first"})
	blob, err := v.MarshalMocha()
	if err != nil {
		t.Fatal(err)
	}
	w := NewGobValue(setting{})
	if err := w.UnmarshalMocha(blob); err != nil {
		t.Fatal(err)
	}
	if got := w.Get(); got.Flatware != 1 || got.Comment != "first" {
		t.Fatalf("got %+v", got)
	}
	w.Update(func(s *setting) { s.Plate = 9 })
	if w.Get().Plate != 9 {
		t.Fatal("Update lost")
	}
}

func TestQuickRoundTripInts(t *testing.T) {
	java := NewJavaStyle(netsim.Native())
	fast := NewFast(netsim.Native())
	f := func(v []int32) bool {
		src := Ints(v)
		jb, err := java.Marshal(src)
		if err != nil {
			return false
		}
		fb, err := fast.Marshal(src)
		if err != nil {
			return false
		}
		if string(jb) != string(fb) {
			return false
		}
		dst := Ints(nil)
		if err := fast.Unmarshal(jb, dst); err != nil {
			return false
		}
		if len(v) == 0 {
			return len(dst.IntsData()) == 0
		}
		return reflect.DeepEqual(dst.IntsData(), v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripFloats(t *testing.T) {
	fast := NewFast(netsim.Native())
	f := func(v []float64) bool {
		blob, err := fast.Marshal(Floats(v))
		if err != nil {
			return false
		}
		dst := Floats(nil)
		if err := fast.Unmarshal(blob, dst); err != nil {
			return false
		}
		got := dst.FloatsData()
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			// NaN-safe comparison via bit patterns.
			if math.Float64bits(got[i]) != math.Float64bits(v[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

func TestJavaStyleCostCharged(t *testing.T) {
	// With a synthetic cost model, marshaling must take at least the
	// modelled time.
	cost := netsim.CostModel{MarshalPerObject: 30 * time.Millisecond}
	codec := NewJavaStyle(cost)
	start := time.Now()
	if _, err := codec.Marshal(Bytes(make([]byte, 16))); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("marshal took %v, want >= 25ms of modelled cost", elapsed)
	}
}
