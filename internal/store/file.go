package store

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mocha/internal/wire"
)

// WAL framing: each record is a Marshal'ed wire.WALRecord inside a
// length+CRC frame. A torn tail — a frame whose header or body was cut by
// a crash mid-write — decodes as a short read or CRC mismatch and replay
// truncates the segment there, never installing partial bytes.
//
//	[u32 body length][u32 crc32(body)][body]
const frameHeader = 8

// maxFrameBody bounds a frame body so a corrupt length field cannot make
// replay allocate gigabytes before the CRC catches it.
const maxFrameBody = 64 << 20

const (
	defaultSegmentBytes  = 4 << 20
	defaultFsyncInterval = 5 * time.Millisecond
	segPrefix            = "wal-"
	segSuffix            = ".log"
)

// Options configures a FileStore.
type Options struct {
	// MemLimit caps the payload bytes held in memory; once exceeded, clean
	// records are evicted least-recently-used and refault from the log on
	// the next Get. 0 means unlimited.
	MemLimit int
	// SegmentBytes rotates and compacts the log when the active segment
	// grows past this size. 0 picks a default.
	SegmentBytes int
	// FsyncInterval batches fsyncs: appends return after the buffered OS
	// write and a flusher syncs the segment at this cadence (group
	// commit). 0 picks a default; negative syncs on every append.
	FsyncInterval time.Duration
	// FaultHook, when non-nil, is consulted before each append.
	FaultHook FaultHook
}

// frameRef locates one replayable frame: the segment it lives in and its
// offset, so a refault can re-read exactly the frames that built a record.
type frameRef struct {
	seq uint64
	off int64
	len int
}

// entry is one lock's in-store state: the record (payloads nil when
// evicted), the frame chain that rebuilds it, and its LRU hook.
type entry struct {
	rec   Record
	bytes int
	// chain is the record's replay chain: a full WALPut frame followed by
	// the WALDelta frames applied since. Compaction collapses it back to
	// one frame.
	chain []frameRef
	elem  *list.Element
}

// segment is one log file, kept open for refault reads until compaction
// deletes it.
type segment struct {
	seq  uint64
	f    *os.File
	size int64
}

// FileStore is the log-structured durable backend: an append-only
// write-ahead log of wire.WALRecords plus an in-memory record cache with
// LRU eviction. The log is the truth; the cache is a performance layer
// that can always be rebuilt from it.
type FileStore struct {
	dir  string
	opts Options

	mu      sync.Mutex
	closed  bool
	entries map[wire.LockID]*entry
	// lru orders cached entries, front = most recently used. Dirty and
	// evicted entries are not on the list.
	lru    *list.List
	cached int
	segs   map[uint64]*segment
	active *segment
	// compact is the in-progress incremental compaction sweep, nil when
	// idle. Appends advance it a bounded step at a time.
	compact *compactState
	// unsynced marks buffered appends the flusher has not fsynced yet.
	unsynced  bool
	stats     Stats
	recovered []Record

	flushStop chan struct{}
	flushDone chan struct{}
}

var _ Store = (*FileStore)(nil)

// Open opens (creating if necessary) a durable store rooted at dir and
// replays its write-ahead log. The recovered records are available from
// Recover until the first call consumes them.
func Open(dir string, opts Options) (*FileStore, error) {
	if opts.SegmentBytes == 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.FsyncInterval == 0 {
		opts.FsyncInterval = defaultFsyncInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	fs := &FileStore{
		dir:       dir,
		opts:      opts,
		entries:   make(map[wire.LockID]*entry),
		lru:       list.New(),
		segs:      make(map[uint64]*segment),
		flushStop: make(chan struct{}),
		flushDone: make(chan struct{}),
	}
	if err := fs.replay(); err != nil {
		fs.closeSegments()
		return nil, err
	}
	if fs.active == nil {
		if err := fs.openSegment(1); err != nil {
			fs.closeSegments()
			return nil, err
		}
	}
	if opts.FsyncInterval > 0 {
		go fs.flusher()
	} else {
		close(fs.flushDone)
	}
	return fs, nil
}

// segPath names a segment file; the sequence number orders replay.
func (fs *FileStore) segPath(seq uint64) string {
	return filepath.Join(fs.dir, fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix))
}

// openSegment creates (or reopens) a segment as the active one.
func (fs *FileStore) openSegment(seq uint64) error {
	f, err := os.OpenFile(fs.segPath(seq), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: open segment: %w", err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return fmt.Errorf("store: seek segment: %w", err)
	}
	seg := &segment{seq: seq, f: f, size: size}
	fs.segs[seq] = seg
	fs.active = seg
	return nil
}

// replay scans every segment in sequence order, rebuilding the record
// cache. Each segment is independently tail-truncated at the first bad
// frame: compaction writes full checkpoints at the head of every new
// segment, so replay stays sound even if an earlier tail was lost.
func (fs *FileStore) replay() error {
	names, err := os.ReadDir(fs.dir)
	if err != nil {
		return fmt.Errorf("store: read dir: %w", err)
	}
	var seqs []uint64
	for _, de := range names {
		name := de.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		if err := fs.replaySegment(seq); err != nil {
			return err
		}
	}
	if len(seqs) > 0 {
		fs.active = fs.segs[seqs[len(seqs)-1]]
	}
	for _, e := range fs.entries {
		fs.recovered = append(fs.recovered, e.rec)
		if e.rec.Dirty {
			continue
		}
		e.elem = fs.lru.PushFront(e)
	}
	sort.Slice(fs.recovered, func(i, j int) bool { return fs.recovered[i].Lock < fs.recovered[j].Lock })
	fs.stats.Recovered = len(fs.recovered)
	fs.enforceLimitLocked()
	return nil
}

// replaySegment replays one segment file, truncating at the first torn or
// corrupt frame.
func (fs *FileStore) replaySegment(seq uint64) error {
	f, err := os.OpenFile(fs.segPath(seq), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: open segment %d: %w", seq, err)
	}
	seg := &segment{seq: seq, f: f}
	fs.segs[seq] = seg
	var off int64
	hdr := make([]byte, frameHeader)
	for {
		if _, err := f.ReadAt(hdr, off); err != nil {
			break // clean EOF or torn header: truncate here
		}
		bodyLen := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if bodyLen == 0 || bodyLen > maxFrameBody {
			break
		}
		body := make([]byte, bodyLen)
		if _, err := f.ReadAt(body, off+frameHeader); err != nil {
			break // torn body
		}
		if crc32.ChecksumIEEE(body) != sum {
			break // bit flip or half-written body
		}
		p, err := wire.Unmarshal(body)
		if err != nil {
			break
		}
		rec, ok := p.(*wire.WALRecord)
		if !ok {
			break
		}
		frame := frameRef{seq: seq, off: off, len: frameHeader + int(bodyLen)}
		fs.applyReplayed(rec, frame)
		off += int64(frame.len)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("store: seek segment %d: %w", seq, err)
	}
	if off < size {
		fs.stats.TruncatedTails++
		if err := f.Truncate(off); err != nil {
			return fmt.Errorf("store: truncate torn tail of segment %d: %w", seq, err)
		}
	}
	seg.size = off
	return nil
}

// applyReplayed folds one replayed record into the cache.
func (fs *FileStore) applyReplayed(rec *wire.WALRecord, frame frameRef) {
	e := fs.entries[rec.Lock]
	switch rec.Op {
	case wire.WALPut:
		full, err := applyDeltaSet(nil, rec.Replicas)
		if err != nil {
			fs.stats.SkippedRecords++
			return
		}
		if e == nil {
			e = &entry{}
			fs.entries[rec.Lock] = e
		} else {
			fs.cached -= e.bytes
		}
		e.rec = Record{Lock: rec.Lock, Version: rec.Version, Dirty: rec.Dirty, Fence: rec.Fence, Replicas: full}
		e.bytes = payloadBytes(full)
		e.chain = []frameRef{frame}
		fs.cached += e.bytes
	case wire.WALDelta:
		if e == nil || e.rec.Version != rec.FromVersion || e.rec.Replicas == nil {
			fs.stats.SkippedRecords++
			return
		}
		patched, err := applyDeltaSet(e.rec.Replicas, rec.Replicas)
		if err != nil {
			fs.stats.SkippedRecords++
			return
		}
		fs.cached -= e.bytes
		e.rec.Version = rec.Version
		e.rec.Dirty = rec.Dirty
		e.rec.Fence = rec.Fence
		e.rec.Replicas = patched
		e.bytes = payloadBytes(patched)
		e.chain = append(e.chain, frame)
		fs.cached += e.bytes
	case wire.WALCommit:
		if e != nil && e.rec.Version == rec.Version {
			e.rec.Dirty = false
		}
	default:
		fs.stats.SkippedRecords++
	}
}

// flusher batches fsyncs at the configured cadence (group commit): an
// append returns after the buffered OS write, and durability lags by at
// most one interval — the window the crash-before-fsync fault explores.
func (fs *FileStore) flusher() {
	defer close(fs.flushDone)
	t := time.NewTicker(fs.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-fs.flushStop:
			return
		case <-t.C:
			fs.Sync()
		}
	}
}

// Sync fsyncs the active segment if appends are pending.
func (fs *FileStore) Sync() error {
	fs.mu.Lock()
	if fs.closed || !fs.unsynced || fs.active == nil {
		fs.mu.Unlock()
		return nil
	}
	f := fs.active.f
	fs.unsynced = false
	fs.stats.Fsyncs++
	fs.mu.Unlock()
	// Sync outside the lock: appends may proceed against the OS buffer
	// while the disk catches up.
	return f.Sync()
}

// appendFrame writes one WAL record to the active segment, firing the
// storage fault points first. Caller holds fs.mu.
func (fs *FileStore) appendFrameLocked(rec *wire.WALRecord) (frameRef, error) {
	if hook := fs.opts.FaultHook; hook != nil {
		if hook(FaultCrashBeforeFsync, rec.Lock, rec.Version) {
			// The record is lost exactly as if the site died after the
			// protocol action but before the log write reached disk.
			fs.stats.FaultsInjected++
			return frameRef{}, fmt.Errorf("%w: %s", ErrFaultInjected, FaultCrashBeforeFsync)
		}
	}
	body := wire.Marshal(rec)
	frame := make([]byte, frameHeader+len(body))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
	copy(frame[frameHeader:], body)
	if hook := fs.opts.FaultHook; hook != nil {
		if hook(FaultTornWALTail, rec.Lock, rec.Version) {
			// Write a torn prefix — header plus half the body — and sync
			// it, the state a mid-write power cut leaves on disk. Replay
			// must truncate it cleanly.
			fs.stats.FaultsInjected++
			torn := frame[:frameHeader+len(body)/2]
			if _, err := fs.active.f.WriteAt(torn, fs.active.size); err == nil {
				fs.active.size += int64(len(torn))
				fs.active.f.Sync()
			}
			return frameRef{}, fmt.Errorf("%w: %s", ErrFaultInjected, FaultTornWALTail)
		}
	}
	off := fs.active.size
	if _, err := fs.active.f.WriteAt(frame, off); err != nil {
		return frameRef{}, fmt.Errorf("store: append: %w", err)
	}
	fs.active.size += int64(len(frame))
	fs.unsynced = true
	fs.stats.Appends++
	if fs.opts.FsyncInterval < 0 {
		fs.stats.Fsyncs++
		if err := fs.active.f.Sync(); err != nil {
			return frameRef{}, fmt.Errorf("store: fsync: %w", err)
		}
		fs.unsynced = false
	}
	return frameRef{seq: fs.active.seq, off: off, len: len(frame)}, nil
}

// Get implements Store, refaulting evicted payloads from the log.
func (fs *FileStore) Get(lock wire.LockID) (Record, bool, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return Record{}, false, ErrClosed
	}
	e, ok := fs.entries[lock]
	if !ok {
		return Record{}, false, nil
	}
	if e.rec.Replicas == nil {
		if err := fs.refaultLocked(e); err != nil {
			return Record{}, true, err
		}
	}
	fs.touchLocked(e)
	return e.rec, true, nil
}

// refaultLocked re-reads an evicted record's frame chain and rebuilds its
// payloads. Caller holds fs.mu.
func (fs *FileStore) refaultLocked(e *entry) error {
	var payloads []wire.ReplicaPayload
	version := uint64(0)
	for i, fr := range e.chain {
		seg := fs.segs[fr.seq]
		if seg == nil {
			return fmt.Errorf("store: refault: segment %d gone", fr.seq)
		}
		buf := make([]byte, fr.len)
		if _, err := seg.f.ReadAt(buf, fr.off); err != nil {
			return fmt.Errorf("store: refault read: %w", err)
		}
		body := buf[frameHeader:]
		if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(buf[4:8]) {
			return fmt.Errorf("store: refault: frame checksum mismatch in segment %d", fr.seq)
		}
		p, err := wire.Unmarshal(body)
		if err != nil {
			return fmt.Errorf("store: refault decode: %w", err)
		}
		rec, ok := p.(*wire.WALRecord)
		if !ok {
			return fmt.Errorf("store: refault: unexpected %s frame", p.Kind())
		}
		switch {
		case i == 0 && rec.Op == wire.WALPut:
		case i > 0 && rec.Op == wire.WALDelta && rec.FromVersion == version:
		default:
			return fmt.Errorf("store: refault: broken chain at frame %d (%d op %d from v%d have v%d)",
				i, rec.Lock, rec.Op, rec.FromVersion, version)
		}
		payloads, err = applyDeltaSet(payloads, rec.Replicas)
		if err != nil {
			return fmt.Errorf("store: refault replay: %w", err)
		}
		version = rec.Version
	}
	if version != e.rec.Version {
		return fmt.Errorf("store: refault: chain ends at v%d, record at v%d", version, e.rec.Version)
	}
	e.rec.Replicas = payloads
	e.bytes = payloadBytes(payloads)
	fs.cached += e.bytes
	fs.stats.Refaults++
	return nil
}

// touchLocked marks an entry most-recently-used and enforces the memory
// cap. Dirty entries are pinned off the LRU list: their bytes are the only
// copy guaranteed above the committed horizon.
func (fs *FileStore) touchLocked(e *entry) {
	if e.rec.Dirty {
		if e.elem != nil {
			fs.lru.Remove(e.elem)
			e.elem = nil
		}
	} else if e.elem != nil {
		fs.lru.MoveToFront(e.elem)
	} else if e.rec.Replicas != nil {
		e.elem = fs.lru.PushFront(e)
	}
	fs.enforceLimitLocked()
}

// enforceLimitLocked evicts clean LRU records until the cache fits the
// configured cap. Caller holds fs.mu.
func (fs *FileStore) enforceLimitLocked() {
	if fs.opts.MemLimit <= 0 {
		return
	}
	for fs.cached > fs.opts.MemLimit {
		back := fs.lru.Back()
		if back == nil {
			return // everything left is dirty or already evicted
		}
		e := back.Value.(*entry)
		fs.evictLocked(e)
	}
}

// evictLocked drops one entry's payload bytes. Caller holds fs.mu and has
// checked the entry is clean.
func (fs *FileStore) evictLocked(e *entry) {
	if e.elem != nil {
		fs.lru.Remove(e.elem)
		e.elem = nil
	}
	if e.rec.Replicas == nil {
		return
	}
	fs.cached -= e.bytes
	e.rec.Replicas = nil
	e.bytes = 0
	fs.stats.Evictions++
}

// Put implements Store.
func (fs *FileStore) Put(rec Record) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	frame, err := fs.appendFrameLocked(&wire.WALRecord{
		Op: wire.WALPut, Lock: rec.Lock, Version: rec.Version,
		Dirty: rec.Dirty, Fence: rec.Fence, Replicas: fullsToDeltas(rec.Replicas),
	})
	if err != nil {
		return err
	}
	e, ok := fs.entries[rec.Lock]
	if !ok {
		e = &entry{}
		fs.entries[rec.Lock] = e
	} else {
		fs.cached -= e.bytes
	}
	e.rec = rec
	e.bytes = payloadBytes(rec.Replicas)
	e.chain = []frameRef{frame}
	fs.cached += e.bytes
	fs.touchLocked(e)
	return fs.maybeCompactLocked()
}

// AppendDelta implements Store.
func (fs *FileStore) AppendDelta(fromVersion uint64, rec Record, deltas []wire.DeltaPayload) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	e, ok := fs.entries[rec.Lock]
	if !ok || e.rec.Version != fromVersion {
		return ErrBadDeltaBase
	}
	// Validate the delta against the record's bytes before it reaches the
	// log — refaulting an evicted record first. An invalid delta appended
	// unvalidated would extend the frame chain with a frame replay can
	// never apply, poisoning every later refault and compaction of the
	// record.
	if e.rec.Replicas == nil {
		if err := fs.refaultLocked(e); err != nil {
			return err
		}
	}
	patched, err := applyDeltaSet(e.rec.Replicas, deltas)
	if err != nil {
		return err
	}
	frame, err := fs.appendFrameLocked(&wire.WALRecord{
		Op: wire.WALDelta, Lock: rec.Lock, FromVersion: fromVersion, Version: rec.Version,
		Dirty: rec.Dirty, Fence: rec.Fence, Replicas: deltas,
	})
	if err != nil {
		return err
	}
	fs.cached -= e.bytes
	e.rec.Version = rec.Version
	e.rec.Dirty = rec.Dirty
	e.rec.Fence = rec.Fence
	e.rec.Replicas = patched
	e.bytes = payloadBytes(patched)
	e.chain = append(e.chain, frame)
	fs.cached += e.bytes
	fs.touchLocked(e)
	return fs.maybeCompactLocked()
}

// Commit implements Store.
func (fs *FileStore) Commit(lock wire.LockID, version uint64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	e, ok := fs.entries[lock]
	if !ok {
		return ErrUnknownLock
	}
	if e.rec.Version != version {
		return nil // superseded: a later record already replaced it
	}
	if _, err := fs.appendFrameLocked(&wire.WALRecord{Op: wire.WALCommit, Lock: lock, Version: version, Fence: e.rec.Fence}); err != nil {
		return err
	}
	e.rec.Dirty = false
	fs.touchLocked(e)
	// Commit appends a frame like the other write paths, so it must also
	// drive compaction: a commit-heavy stretch would otherwise grow the
	// active segment arbitrarily past SegmentBytes.
	return fs.maybeCompactLocked()
}

// Evict implements Store.
func (fs *FileStore) Evict(lock wire.LockID) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	e, ok := fs.entries[lock]
	if !ok {
		return ErrUnknownLock
	}
	if e.rec.Dirty {
		return ErrEvictDirty
	}
	fs.evictLocked(e)
	return nil
}

// Recover implements Store, handing out the records replayed at Open once.
func (fs *FileStore) Recover() ([]Record, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, ErrClosed
	}
	recs := fs.recovered
	fs.recovered = nil
	return recs, nil
}

// Durable implements Store.
func (fs *FileStore) Durable() bool { return true }

// Stats implements Store.
func (fs *FileStore) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	s := fs.stats
	s.Records = len(fs.entries)
	s.CachedBytes = fs.cached
	return s
}

// compactStepBudget bounds how many records a single append checkpoints
// during an incremental compaction sweep. The rewrite of the whole store
// is amortized across appends instead of stalling one release/apply path
// (the daemon calls Put/AppendDelta holding the lock's st.mu) with an
// O(store size) burst of refaults, rewrites, and an fsync.
const compactStepBudget = 4

// compactState is one in-progress incremental compaction sweep: the
// segments being retired and the locks whose frame chains may still
// reference them.
type compactState struct {
	old   map[uint64]*segment
	queue []wire.LockID
}

// chainTouches reports whether any frame of the chain lives in one of the
// retiring segments.
func chainTouches(chain []frameRef, old map[uint64]*segment) bool {
	for _, fr := range chain {
		if _, ok := old[fr.seq]; ok {
			return true
		}
	}
	return false
}

// maybeCompactLocked rotates to a fresh segment once the active one grows
// past the configured size, then incrementally checkpoints live records
// into it — a bounded number per append — and deletes the retired
// segments once no chain references them: the log never retains bytes
// below the committed horizon longer than one sweep's worth of appends.
// Caller holds fs.mu.
func (fs *FileStore) maybeCompactLocked() error {
	if fs.compact == nil {
		if fs.active == nil || fs.active.size < int64(fs.opts.SegmentBytes) {
			return nil
		}
		old := make(map[uint64]*segment, len(fs.segs))
		for seq, seg := range fs.segs {
			old[seq] = seg
		}
		if err := fs.openSegment(fs.active.seq + 1); err != nil {
			return err
		}
		// Snapshot the locks to sweep. Records put after the rotation land
		// in the new segment chain-and-all, so the snapshot is complete.
		locks := make([]wire.LockID, 0, len(fs.entries))
		for id := range fs.entries {
			locks = append(locks, id)
		}
		sort.Slice(locks, func(i, j int) bool { return locks[i] < locks[j] })
		fs.compact = &compactState{old: old, queue: locks}
	}
	return fs.compactStepLocked()
}

// compactStepLocked advances the sweep: checkpoints up to
// compactStepBudget records, and on the last one fsyncs the new segment
// and reclaims the retired ones. A failed record stays at the head of the
// queue — retired segments are never removed while a chain still points
// into them. Caller holds fs.mu.
func (fs *FileStore) compactStepLocked() error {
	cs := fs.compact
	for n := 0; n < compactStepBudget && len(cs.queue) > 0; {
		id := cs.queue[0]
		e, ok := fs.entries[id]
		if !ok || !chainTouches(e.chain, cs.old) {
			// Gone, or a later Put already rewrote it into the new segment.
			cs.queue = cs.queue[1:]
			continue
		}
		// Checkpoint the record as one full WALPut. Evicted records are
		// replayed from the retiring segments transiently — the checkpoint
		// must not grow the cache past the cap.
		payloads := e.rec.Replicas
		evicted := payloads == nil
		if evicted {
			if err := fs.refaultLocked(e); err != nil {
				return fmt.Errorf("store: compact: %w", err)
			}
			payloads = e.rec.Replicas
		}
		frame, err := fs.appendFrameLocked(&wire.WALRecord{
			Op: wire.WALPut, Lock: id, Version: e.rec.Version,
			Dirty: e.rec.Dirty, Fence: e.rec.Fence, Replicas: fullsToDeltas(payloads),
		})
		if evicted {
			fs.evictLocked(e)
		}
		if err != nil {
			return fmt.Errorf("store: compact checkpoint: %w", err)
		}
		e.chain = []frameRef{frame}
		cs.queue = cs.queue[1:]
		n++
	}
	if len(cs.queue) > 0 {
		return nil
	}
	fs.stats.Fsyncs++
	if err := fs.active.f.Sync(); err != nil {
		return fmt.Errorf("store: compact fsync: %w", err)
	}
	fs.unsynced = false
	for _, seg := range cs.old {
		if seg == fs.active {
			continue
		}
		seg.f.Close()
		delete(fs.segs, seg.seq)
		if err := os.Remove(fs.segPath(seg.seq)); err != nil {
			return fmt.Errorf("store: compact remove: %w", err)
		}
	}
	fs.compact = nil
	fs.stats.Compactions++
	return nil
}

// closeSegments closes every open segment file. Caller holds fs.mu or has
// exclusive access.
func (fs *FileStore) closeSegments() {
	for _, seg := range fs.segs {
		seg.f.Close()
	}
}

// Close implements Store, fsyncing pending appends first.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		return nil
	}
	fs.closed = true
	var err error
	if fs.unsynced && fs.active != nil {
		err = fs.active.f.Sync()
		fs.unsynced = false
		fs.stats.Fsyncs++
	}
	fs.closeSegments()
	fs.mu.Unlock()
	if fs.opts.FsyncInterval > 0 {
		close(fs.flushStop)
		<-fs.flushDone
	}
	return err
}
