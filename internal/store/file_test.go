package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"mocha/internal/marshal"
	"mocha/internal/wire"
)

func pay(name string, data []byte) wire.ReplicaPayload {
	return wire.ReplicaPayload{Name: name, Data: data}
}

func rec(lock wire.LockID, version uint64, dirty bool, fence uint64, ps ...wire.ReplicaPayload) Record {
	return Record{Lock: lock, Version: version, Dirty: dirty, Fence: fence, Replicas: ps}
}

// patchTo builds a minimal valid delta payload rewriting a blob to the
// given bytes: one op covering the whole new content.
func patchTo(name string, data []byte) wire.DeltaPayload {
	return wire.DeltaPayload{
		Name:     name,
		NewLen:   uint32(len(data)),
		Checksum: marshal.Checksum(data),
		Ops:      []wire.PatchOp{{Off: 0, Data: data}},
	}
}

func openT(t *testing.T, dir string, opts Options) *FileStore {
	t.Helper()
	if opts.FsyncInterval == 0 {
		opts.FsyncInterval = -1 // deterministic: sync every append
	}
	fs, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	return fs
}

func wantPayload(t *testing.T, r Record, name string, data []byte) {
	t.Helper()
	for _, p := range r.Replicas {
		if p.Name == name {
			if string(p.Data) != string(data) {
				t.Fatalf("payload %q = %q, want %q", name, p.Data, data)
			}
			return
		}
	}
	t.Fatalf("payload %q missing from record of lock %d", name, r.Lock)
}

func TestPutGetRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	fs := openT(t, dir, Options{})
	if !fs.Durable() {
		t.Fatal("file store must report durable")
	}
	if err := fs.Put(rec(1, 3, false, 7, pay("a", []byte("alpha")), pay("b", []byte("beta")))); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, ok, err := fs.Get(1)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if got.Version != 3 || got.Dirty || got.Fence != 7 {
		t.Fatalf("got %+v", got)
	}
	wantPayload(t, got, "a", []byte("alpha"))
	if err := fs.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	fs2 := openT(t, dir, Options{})
	defer fs2.Close()
	recs, err := fs2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(recs) != 1 || recs[0].Lock != 1 || recs[0].Version != 3 || recs[0].Fence != 7 {
		t.Fatalf("recovered %+v", recs)
	}
	wantPayload(t, recs[0], "b", []byte("beta"))
	// Recover hands the set out once.
	again, _ := fs2.Recover()
	if len(again) != 0 {
		t.Fatalf("second Recover returned %d records", len(again))
	}
}

func TestAppendDeltaAdvancesAndRejectsBadBase(t *testing.T) {
	dir := t.TempDir()
	fs := openT(t, dir, Options{})
	if err := fs.Put(rec(5, 1, false, 1, pay("x", []byte("one")))); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := fs.AppendDelta(1, rec(5, 2, true, 2), []wire.DeltaPayload{patchTo("x", []byte("two"))}); err != nil {
		t.Fatalf("delta: %v", err)
	}
	if err := fs.AppendDelta(9, rec(5, 10, false, 2), nil); !errors.Is(err, ErrBadDeltaBase) {
		t.Fatalf("bad base: got %v", err)
	}
	got, _, _ := fs.Get(5)
	if got.Version != 2 || !got.Dirty {
		t.Fatalf("after delta: %+v", got)
	}
	wantPayload(t, got, "x", []byte("two"))
	fs.Close()

	// The delta survives restart: replay chains the put and the patch.
	fs2 := openT(t, dir, Options{})
	defer fs2.Close()
	got, ok, err := fs2.Get(5)
	if err != nil || !ok {
		t.Fatalf("get after reopen: ok=%v err=%v", ok, err)
	}
	if got.Version != 2 || !got.Dirty || got.Fence != 2 {
		t.Fatalf("reopened: %+v", got)
	}
	wantPayload(t, got, "x", []byte("two"))
}

func TestCommitClearsDirtyAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	fs := openT(t, dir, Options{})
	if err := fs.Put(rec(2, 4, true, 3, pay("a", []byte("uncommitted")))); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := fs.Commit(2, 4); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if err := fs.Commit(99, 1); !errors.Is(err, ErrUnknownLock) {
		t.Fatalf("commit unknown: %v", err)
	}
	fs.Close()
	fs2 := openT(t, dir, Options{})
	defer fs2.Close()
	got, ok, _ := fs2.Get(2)
	if !ok || got.Dirty {
		t.Fatalf("commit did not survive restart: %+v", got)
	}
}

func TestDirtyRecordStaysDirtyAfterRestart(t *testing.T) {
	dir := t.TempDir()
	fs := openT(t, dir, Options{})
	if err := fs.Put(rec(3, 9, true, 1, pay("a", []byte("in flight")))); err != nil {
		t.Fatalf("put: %v", err)
	}
	fs.Close()
	fs2 := openT(t, dir, Options{})
	defer fs2.Close()
	got, ok, _ := fs2.Get(3)
	if !ok || !got.Dirty {
		t.Fatalf("dirty record must recover dirty: %+v", got)
	}
}

func TestTornTailTruncatedCleanly(t *testing.T) {
	dir := t.TempDir()
	fs := openT(t, dir, Options{})
	if err := fs.Put(rec(1, 1, false, 0, pay("a", []byte("keep me")))); err != nil {
		t.Fatalf("put: %v", err)
	}
	fs.Close()

	// Append garbage to the segment: a plausible header with a body that
	// was never fully written, as a crash mid-append leaves behind.
	seg := filepath.Join(dir, "wal-00000001.log")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 200, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3}); err != nil {
		t.Fatalf("tear: %v", err)
	}
	f.Close()

	fs2 := openT(t, dir, Options{})
	got, ok, err := fs2.Get(1)
	if err != nil || !ok {
		t.Fatalf("get after torn tail: ok=%v err=%v", ok, err)
	}
	wantPayload(t, got, "a", []byte("keep me"))
	if st := fs2.Stats(); st.TruncatedTails != 1 {
		t.Fatalf("TruncatedTails = %d, want 1", st.TruncatedTails)
	}
	// The store must stay appendable at the truncated offset.
	if err := fs2.Put(rec(2, 1, false, 0, pay("b", []byte("new")))); err != nil {
		t.Fatalf("put after truncation: %v", err)
	}
	fs2.Close()
	fs3 := openT(t, dir, Options{})
	defer fs3.Close()
	if recs, _ := fs3.Recover(); len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2", len(recs))
	}
}

func TestRecoveryOfEmptyAndPartialSegments(t *testing.T) {
	// An empty segment file (created, never written).
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal-00000001.log"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	fs := openT(t, dir, Options{})
	if recs, _ := fs.Recover(); len(recs) != 0 {
		t.Fatalf("empty segment recovered %d records", len(recs))
	}
	if err := fs.Put(rec(1, 1, false, 0, pay("a", []byte("x")))); err != nil {
		t.Fatalf("put into recovered-empty store: %v", err)
	}
	fs.Close()

	// A segment holding only half a frame header.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "wal-00000001.log"), []byte{0, 0, 1}, 0o644); err != nil {
		t.Fatal(err)
	}
	fs2 := openT(t, dir2, Options{})
	defer fs2.Close()
	if recs, _ := fs2.Recover(); len(recs) != 0 {
		t.Fatalf("partial segment recovered %d records", len(recs))
	}
	if st := fs2.Stats(); st.TruncatedTails != 1 {
		t.Fatalf("TruncatedTails = %d, want 1", st.TruncatedTails)
	}
}

func TestEvictRefaultUnderMemLimit(t *testing.T) {
	dir := t.TempDir()
	blob := make([]byte, 1024)
	for i := range blob {
		blob[i] = byte(i)
	}
	fs := openT(t, dir, Options{MemLimit: 3 * 1024})
	defer fs.Close()
	for lk := wire.LockID(1); lk <= 8; lk++ {
		data := append([]byte(nil), blob...)
		data[0] = byte(lk)
		if err := fs.Put(rec(lk, 1, false, 0, pay("blob", data))); err != nil {
			t.Fatalf("put %d: %v", lk, err)
		}
	}
	st := fs.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under cap: %+v", st)
	}
	if st.CachedBytes > 3*1024 {
		t.Fatalf("cache over cap: %d bytes", st.CachedBytes)
	}
	// Every lock's bytes still read back correctly, refaulting as needed.
	for lk := wire.LockID(1); lk <= 8; lk++ {
		got, ok, err := fs.Get(lk)
		if err != nil || !ok {
			t.Fatalf("get %d: ok=%v err=%v", lk, ok, err)
		}
		if got.Replicas[0].Data[0] != byte(lk) || len(got.Replicas[0].Data) != 1024 {
			t.Fatalf("lock %d refaulted wrong bytes", lk)
		}
	}
	if st := fs.Stats(); st.Refaults == 0 {
		t.Fatalf("expected refaults: %+v", st)
	}
}

func TestEvictWhileDirtyRefused(t *testing.T) {
	dir := t.TempDir()
	fs := openT(t, dir, Options{})
	defer fs.Close()
	if err := fs.Put(rec(1, 2, true, 1, pay("a", []byte("dirty bytes")))); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := fs.Evict(1); !errors.Is(err, ErrEvictDirty) {
		t.Fatalf("evict dirty: got %v, want ErrEvictDirty", err)
	}
	if err := fs.Evict(42); !errors.Is(err, ErrUnknownLock) {
		t.Fatalf("evict unknown: got %v", err)
	}
	if err := fs.Commit(1, 2); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if err := fs.Evict(1); err != nil {
		t.Fatalf("evict after commit: %v", err)
	}
	got, ok, err := fs.Get(1)
	if err != nil || !ok {
		t.Fatalf("get after evict: ok=%v err=%v", ok, err)
	}
	wantPayload(t, got, "a", []byte("dirty bytes"))
}

// TestRefaultRacesIncomingDelta pins the evicted-append path: a delta
// arriving for an evicted record extends its replay chain without
// materializing it, and the next Get replays put+deltas in order. The
// concurrent half hammers Get against AppendDelta to shake out lock
// ordering bugs under the race detector.
func TestRefaultRacesIncomingDelta(t *testing.T) {
	dir := t.TempDir()
	fs := openT(t, dir, Options{})
	defer fs.Close()
	if err := fs.Put(rec(1, 1, false, 0, pay("x", []byte("v1")))); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := fs.Evict(1); err != nil {
		t.Fatalf("evict: %v", err)
	}
	// Delta lands while the record is evicted.
	if err := fs.AppendDelta(1, rec(1, 2, false, 0), []wire.DeltaPayload{patchTo("x", []byte("v2"))}); err != nil {
		t.Fatalf("delta onto evicted record: %v", err)
	}
	got, ok, err := fs.Get(1)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if got.Version != 2 {
		t.Fatalf("version %d after evicted delta", got.Version)
	}
	wantPayload(t, got, "x", []byte("v2"))

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		v := uint64(2)
		for i := 0; i < 50; i++ {
			next := []byte(fmt.Sprintf("v%d", v+1))
			if err := fs.AppendDelta(v, rec(1, v+1, false, 0), []wire.DeltaPayload{patchTo("x", next)}); err != nil {
				t.Errorf("delta v%d: %v", v+1, err)
				return
			}
			v++
			_ = fs.Evict(1)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			r, ok, err := fs.Get(1)
			if err != nil || !ok {
				t.Errorf("racing get: ok=%v err=%v", ok, err)
				return
			}
			if want := fmt.Sprintf("v%d", r.Version); string(r.Replicas[0].Data) != want {
				t.Errorf("version %d carries bytes %q", r.Version, r.Replicas[0].Data)
				return
			}
		}
	}()
	wg.Wait()
}

func TestAppendDeltaToEvictedRecordValidatesAgainstRefault(t *testing.T) {
	dir := t.TempDir()
	fs := openT(t, dir, Options{})
	defer fs.Close()
	if err := fs.Put(rec(3, 1, false, 1, pay("x", []byte("base")))); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := fs.Evict(3); err != nil {
		t.Fatalf("evict: %v", err)
	}

	// An invalid delta (corrupt checksum) against the evicted record must
	// be rejected before it reaches the log: appended unvalidated it would
	// extend the frame chain with a frame replay can never apply, failing
	// every later refault and compaction of the record.
	bad := patchTo("x", []byte("next"))
	bad.Checksum++
	if err := fs.AppendDelta(1, rec(3, 2, false, 1), []wire.DeltaPayload{bad}); err == nil {
		t.Fatal("invalid delta against evicted record accepted")
	}
	got, ok, err := fs.Get(3)
	if err != nil || !ok || got.Version != 1 {
		t.Fatalf("after rejected delta: %+v ok=%v err=%v", got, ok, err)
	}
	wantPayload(t, got, "x", []byte("base"))

	// A valid delta against an evicted record refaults and applies.
	if err := fs.Evict(3); err != nil {
		t.Fatalf("re-evict: %v", err)
	}
	if err := fs.AppendDelta(1, rec(3, 2, false, 2), []wire.DeltaPayload{patchTo("x", []byte("next"))}); err != nil {
		t.Fatalf("valid delta against evicted record: %v", err)
	}
	got, _, _ = fs.Get(3)
	if got.Version != 2 {
		t.Fatalf("after delta: %+v", got)
	}
	wantPayload(t, got, "x", []byte("next"))
}

func TestCommitHeavyStretchStillCompacts(t *testing.T) {
	// Commit appends WALCommit frames like every other write path, so a
	// commit-heavy stretch must rotate and compact the log too, not grow
	// the active segment without bound.
	dir := t.TempDir()
	fs := openT(t, dir, Options{SegmentBytes: 2048})
	defer fs.Close()
	if err := fs.Put(rec(1, 1, true, 1, pay("x", []byte("data")))); err != nil {
		t.Fatalf("put: %v", err)
	}
	for i := 0; i < 200; i++ {
		if err := fs.Commit(1, 1); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	st := fs.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after %d appends via Commit: %+v", st.Appends, st)
	}
	var size int64
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		if info, err := de.Info(); err == nil {
			size += info.Size()
		}
	}
	if size > 2*2048 {
		t.Fatalf("log grew to %dB under commit-only load (SegmentBytes 2048)", size)
	}
}

func TestCompactionCollapsesSegments(t *testing.T) {
	dir := t.TempDir()
	fs := openT(t, dir, Options{SegmentBytes: 2048, MemLimit: 1500})
	blob := make([]byte, 400)
	v := uint64(0)
	for i := 0; i < 40; i++ {
		v++
		blob[0] = byte(v)
		lk := wire.LockID(1 + i%3)
		if err := fs.Put(rec(lk, v, false, 0, pay("b", append([]byte(nil), blob...)))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	st := fs.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compactions after %d appends: %+v", st.Appends, st)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("compaction left %d segments", len(ents))
	}
	fs.Close()
	fs2 := openT(t, dir, Options{})
	defer fs2.Close()
	recs, _ := fs2.Recover()
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs))
	}
}

func TestCrashBeforeFsyncFaultLosesAppend(t *testing.T) {
	dir := t.TempDir()
	arm := false
	hook := func(point string, lock wire.LockID, version uint64) bool {
		return arm && point == FaultCrashBeforeFsync
	}
	fs := openT(t, dir, Options{FaultHook: hook})
	if err := fs.Put(rec(1, 1, false, 0, pay("a", []byte("durable")))); err != nil {
		t.Fatalf("put: %v", err)
	}
	arm = true
	err := fs.Put(rec(1, 2, false, 0, pay("a", []byte("lost"))))
	if !errors.Is(err, ErrFaultInjected) {
		t.Fatalf("faulted put: got %v", err)
	}
	arm = false
	if st := fs.Stats(); st.FaultsInjected != 1 {
		t.Fatalf("FaultsInjected = %d", st.FaultsInjected)
	}
	fs.Close()
	fs2 := openT(t, dir, Options{})
	defer fs2.Close()
	got, ok, _ := fs2.Get(1)
	if !ok || got.Version != 1 {
		t.Fatalf("after crash-before-fsync: %+v ok=%v", got, ok)
	}
	wantPayload(t, got, "a", []byte("durable"))
}

func TestTornWALTailFaultRecoversCleanly(t *testing.T) {
	dir := t.TempDir()
	arm := false
	hook := func(point string, lock wire.LockID, version uint64) bool {
		return arm && point == FaultTornWALTail
	}
	fs := openT(t, dir, Options{FaultHook: hook})
	if err := fs.Put(rec(1, 1, false, 0, pay("a", []byte("durable")))); err != nil {
		t.Fatalf("put: %v", err)
	}
	arm = true
	if err := fs.Put(rec(1, 2, false, 0, pay("a", []byte("torn")))); !errors.Is(err, ErrFaultInjected) {
		t.Fatalf("torn put: got %v", err)
	}
	fs.Close()
	fs2 := openT(t, dir, Options{})
	defer fs2.Close()
	got, ok, _ := fs2.Get(1)
	if !ok || got.Version != 1 {
		t.Fatalf("after torn tail: %+v ok=%v", got, ok)
	}
	if st := fs2.Stats(); st.TruncatedTails != 1 {
		t.Fatalf("TruncatedTails = %d, want 1", st.TruncatedTails)
	}
}

func TestMemoryStoreBaseline(t *testing.T) {
	m := NewMemory()
	if m.Durable() {
		t.Fatal("memory store must not report durable")
	}
	if err := m.Put(rec(1, 1, true, 2, pay("a", []byte("one")))); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := m.AppendDelta(1, rec(1, 2, false, 3), []wire.DeltaPayload{patchTo("a", []byte("two"))}); err != nil {
		t.Fatalf("delta: %v", err)
	}
	if err := m.AppendDelta(7, rec(1, 8, false, 3), nil); !errors.Is(err, ErrBadDeltaBase) {
		t.Fatalf("bad base: %v", err)
	}
	got, ok, _ := m.Get(1)
	if !ok || got.Version != 2 || got.Fence != 3 {
		t.Fatalf("got %+v", got)
	}
	wantPayload(t, got, "a", []byte("two"))
	if err := m.Commit(1, 2); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if err := m.Evict(1); !errors.Is(err, ErrVolatile) {
		t.Fatalf("evict: got %v, want ErrVolatile", err)
	}
	if recs, _ := m.Recover(); len(recs) != 0 {
		t.Fatal("memory store recovered records")
	}
	if st := m.Stats(); st.Records != 1 || st.CachedBytes == 0 {
		t.Fatalf("stats %+v", st)
	}
	m.Close()
	if _, _, err := m.Get(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("get after close: %v", err)
	}
}
