// Package store is the pluggable replica-state store behind a site's
// daemon. The paper's library keeps every replica's marshaled bytes in the
// site manager's address space and loses them on a crash — recovery then
// rebuilds state by polling surviving sites (Section 4). This package
// factors that state behind a small interface with two backends:
//
//   - Memory: the extracted in-memory map, the default. Nothing survives a
//     restart, which is exactly the paper's baseline behavior.
//   - FileStore: a log-structured durable store. Every install, patch, and
//     commit appends a wire.WALRecord — the S29 delta encoding reused as
//     the on-disk record format — to a segmented, CRC-framed, fsync-batched
//     write-ahead log. A restarted daemon replays the log and re-joins the
//     protocol at the persisted version instead of refetching everything.
//
// Payload byte slices handed to a store are treated as immutable: stores
// retain them without copying, exactly like the daemon's marshaled-payload
// cache. Records recovered or refaulted from disk are freshly decoded and
// never aliased by later writes.
package store

import (
	"errors"
	"fmt"

	"mocha/internal/marshal"
	"mocha/internal/wire"
)

// Record is one lock's replica state as the store tracks it: the marshaled
// replica blobs plus the version/commit/fence bookkeeping a recovery needs
// to re-join the protocol honestly.
type Record struct {
	Lock    wire.LockID
	Version uint64
	// Dirty marks state whose commit was not yet durable when the record
	// was written: a release that published Version but whose RELEASELOCK
	// was not yet acknowledged. A recovered dirty record must be reported
	// to version polls as dirty, never as committed — the version number
	// may have died with the releaser.
	Dirty bool
	// Fence is the highest fencing token persisted with the lock's state.
	Fence uint64
	// Replicas holds the lock's marshaled replica blobs by name. Nil on an
	// evicted FileStore record until a Get refaults it.
	Replicas []wire.ReplicaPayload
}

// Store is the replica-state store interface. All methods are safe for
// concurrent use.
type Store interface {
	// Get returns the lock's record, refaulting evicted payloads from the
	// log. ok is false when the lock has no record.
	Get(lock wire.LockID) (rec Record, ok bool, err error)
	// Put installs rec.Replicas as the lock's complete replica set at
	// rec.Version, replacing any prior record.
	Put(rec Record) error
	// AppendDelta advances the lock from fromVersion to rec.Version by the
	// given patch set (rec.Replicas is ignored; deltas carries the ops).
	// If the store's current record is not at fromVersion it returns
	// ErrBadDeltaBase and the caller falls back to Put.
	AppendDelta(fromVersion uint64, rec Record, deltas []wire.DeltaPayload) error
	// Commit marks version committed for the lock, clearing the dirty flag
	// the matching Put/AppendDelta recorded.
	Commit(lock wire.LockID, version uint64) error
	// Evict drops the lock's in-memory payload bytes, keeping them
	// refaultable from the backing log. Dirty records refuse eviction with
	// ErrEvictDirty; a volatile store refuses with ErrVolatile.
	Evict(lock wire.LockID) error
	// Recover returns the records replayed from the backing log when the
	// store was opened, once; a volatile store recovers nothing.
	Recover() ([]Record, error)
	// Durable reports whether records survive Close and reopen.
	Durable() bool
	// Stats returns a snapshot of the store's counters.
	Stats() Stats
	Close() error
}

// Stats counts store activity, for the ablation harness and tests.
type Stats struct {
	// Records is the number of locks with live records.
	Records int
	// CachedBytes is the payload bytes currently held in memory.
	CachedBytes int
	Appends     uint64
	Fsyncs      uint64
	Evictions   uint64
	Refaults    uint64
	Compactions uint64
	// Recovered is the number of records replayed at open.
	Recovered int
	// SkippedRecords counts replayed records dropped for a missing or
	// mismatched delta base.
	SkippedRecords uint64
	// TruncatedTails counts segments whose tail was cut at a torn or
	// corrupt frame during replay.
	TruncatedTails uint64
	// FaultsInjected counts storage faults fired by the fault hook.
	FaultsInjected uint64
}

// Sentinel errors.
var (
	// ErrBadDeltaBase rejects an AppendDelta whose base version does not
	// match the stored record; the caller falls back to a full Put.
	ErrBadDeltaBase = errors.New("store: delta base version mismatch")
	// ErrEvictDirty refuses to evict a record whose commit is not durable:
	// dirty bytes above the committed horizon are the only copy that can
	// still be compacted away, so they stay pinned in memory.
	ErrEvictDirty = errors.New("store: record is dirty; eviction refused")
	// ErrVolatile marks operations needing a backing log (eviction) on the
	// in-memory store.
	ErrVolatile = errors.New("store: memory store has no backing log")
	// ErrUnknownLock reports an operation on a lock with no record.
	ErrUnknownLock = errors.New("store: no record for lock")
	// ErrFaultInjected reports an append suppressed by a storage fault
	// point (crash-before-fsync, torn-wal-tail).
	ErrFaultInjected = errors.New("store: fault injected")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("store: closed")
)

// FaultHook lets a fault-exploration harness inject storage faults. It is
// consulted at named points (FPCrashBeforeFsync, FPTornWALTail in core's
// fault-point registry) and returns true when the fault should fire. The
// store cannot import core, so the hook is threaded in as a closure.
type FaultHook func(point string, lock wire.LockID, version uint64) bool

// Storage fault-point names, mirrored by core's fault-point registry.
const (
	// FaultCrashBeforeFsync loses an append as if the site crashed after
	// the release was published but before the log record reached disk.
	FaultCrashBeforeFsync = "crash-before-fsync"
	// FaultTornWALTail writes only a prefix of the record's frame, the
	// torn tail a mid-write power cut leaves behind.
	FaultTornWALTail = "torn-wal-tail"
)

// fullsToDeltas wraps complete replica blobs as Full delta payloads — the
// WALPut body reuses the delta encoding so one record type covers both.
func fullsToDeltas(ps []wire.ReplicaPayload) []wire.DeltaPayload {
	out := make([]wire.DeltaPayload, len(ps))
	for i, p := range ps {
		out[i] = wire.DeltaPayload{Name: p.Name, Full: true, Data: p.Data}
	}
	return out
}

// applyDeltaSet patches a base replica set with a delta payload set,
// verifying lengths and checksums exactly like the daemon's delta apply
// path. Payloads the delta does not name are carried over unchanged.
func applyDeltaSet(base []wire.ReplicaPayload, deltas []wire.DeltaPayload) ([]wire.ReplicaPayload, error) {
	baseByName := make(map[string][]byte, len(base))
	for _, p := range base {
		baseByName[p.Name] = p.Data
	}
	out := make([]wire.ReplicaPayload, 0, len(deltas))
	named := make(map[string]bool, len(deltas))
	for i := range deltas {
		dp := &deltas[i]
		named[dp.Name] = true
		if dp.Full {
			out = append(out, wire.ReplicaPayload{Name: dp.Name, Data: dp.Data})
			continue
		}
		old, ok := baseByName[dp.Name]
		if !ok {
			return nil, fmt.Errorf("store: no base blob for %q", dp.Name)
		}
		ops := make([]marshal.PatchOp, len(dp.Ops))
		for j, op := range dp.Ops {
			ops[j] = marshal.PatchOp{Off: int(op.Off), Data: op.Data}
		}
		patched, err := marshal.ApplyPatch(old, int(dp.NewLen), ops)
		if err != nil {
			return nil, fmt.Errorf("store: patch %q: %w", dp.Name, err)
		}
		if marshal.Checksum(patched) != dp.Checksum {
			return nil, fmt.Errorf("store: checksum mismatch patching %q", dp.Name)
		}
		out = append(out, wire.ReplicaPayload{Name: dp.Name, Data: patched})
	}
	for _, p := range base {
		if !named[p.Name] {
			out = append(out, p)
		}
	}
	return out, nil
}

// payloadBytes sums a replica set's data bytes, the unit the memory cap
// and LRU accounting work in.
func payloadBytes(ps []wire.ReplicaPayload) int {
	n := 0
	for _, p := range ps {
		n += len(p.Data)
	}
	return n
}
