package store

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"mocha/internal/wire"
)

// walFrame frames one WALRecord exactly as appendFrameLocked does, for
// building fuzz seeds.
func walFrame(rec *wire.WALRecord) []byte {
	body := wire.Marshal(rec)
	frame := make([]byte, frameHeader+len(body))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
	copy(frame[frameHeader:], body)
	return frame
}

// FuzzWALRecord feeds arbitrary bytes to the store's segment replay as a
// WAL file. Whatever the bytes — torn tails, bit flips, wild length
// fields, valid prefixes followed by garbage — replay must terminate with
// a clean truncation, never panic, and never install silently bad bytes:
// the store that opens must itself reopen cleanly with the same records.
// fuzzWALSeeds builds the seed segment images: a lone put, a full
// put+delta+commit chain, a torn tail, a bit flip, a wild length field.
// They seed the fuzzer and double as the checked-in corpus under
// testdata/fuzz/FuzzWALRecord.
func fuzzWALSeeds() [][]byte {
	put := walFrame(&wire.WALRecord{Op: wire.WALPut, Lock: 1, Version: 1, Fence: 1,
		Replicas: []wire.DeltaPayload{{Name: "a", Full: true, Data: []byte("seed blob")}}})
	delta := walFrame(&wire.WALRecord{Op: wire.WALDelta, Lock: 1, FromVersion: 1, Version: 2,
		Dirty: true, Fence: 2, Replicas: []wire.DeltaPayload{{Name: "a", NewLen: 2,
			Checksum: crc32.ChecksumIEEE([]byte("vv")), Ops: []wire.PatchOp{{Off: 0, Data: []byte("vv")}}}}})
	commit := walFrame(&wire.WALRecord{Op: wire.WALCommit, Lock: 1, Version: 2})
	flipped := append([]byte{}, put...)
	flipped[frameHeader+3] ^= 0x40 // bit flip inside the body
	wild := append([]byte{}, put...)
	binary.BigEndian.PutUint32(wild[0:4], 0xFFFFFFF0) // wild length field
	return [][]byte{
		{},
		put,
		append(append(append([]byte{}, put...), delta...), commit...),
		append(append([]byte{}, put...), delta[:len(delta)/2]...), // torn tail
		flipped,
		wild,
	}
}

func FuzzWALRecord(f *testing.F) {
	for _, seed := range fuzzWALSeeds() {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-00000001.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		fs, err := Open(dir, Options{FsyncInterval: -1})
		if err != nil {
			t.Fatalf("open must tolerate arbitrary segment bytes: %v", err)
		}
		recs, err := fs.Recover()
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		// Every recovered record must refault to exactly the bytes replay
		// installed (chain consistency survives eviction).
		for _, r := range recs {
			if err := fs.Evict(r.Lock); err != nil {
				continue // dirty records pin their bytes; nothing to check
			}
			got, ok, err := fs.Get(r.Lock)
			if err != nil || !ok {
				t.Fatalf("refault of recovered lock %d: ok=%v err=%v", r.Lock, ok, err)
			}
			if len(got.Replicas) != len(r.Replicas) {
				t.Fatalf("refault of lock %d changed payload count", r.Lock)
			}
			for i := range got.Replicas {
				if got.Replicas[i].Name != r.Replicas[i].Name || string(got.Replicas[i].Data) != string(r.Replicas[i].Data) {
					t.Fatalf("refault of lock %d changed payload %q", r.Lock, got.Replicas[i].Name)
				}
			}
		}
		fs.Close()
		// A store that replayed (and truncated) once must reopen with the
		// identical record set: truncation is idempotent.
		fs2, err := Open(dir, Options{FsyncInterval: -1})
		if err != nil {
			t.Fatalf("reopen after truncation: %v", err)
		}
		recs2, _ := fs2.Recover()
		if len(recs2) != len(recs) {
			t.Fatalf("reopen recovered %d records, first pass %d", len(recs2), len(recs))
		}
		if st := fs2.Stats(); st.TruncatedTails != 0 {
			t.Fatalf("second replay still truncating (%d): first truncation was not clean", st.TruncatedTails)
		}
		fs2.Close()
	})
}
