package store_test

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"os/exec"
	"testing"
	"time"

	"mocha/internal/core"
	"mocha/internal/eventlog"
	"mocha/internal/marshal"
	"mocha/internal/mnet"
	"mocha/internal/netsim"
	"mocha/internal/store"
	"mocha/internal/transport"
	"mocha/internal/wire"
)

// The crash smoke kills a real process, not a goroutine: a child test
// process runs a store-backed daemon in a lock/write/release loop and the
// parent SIGKILLs it mid-load — buffered OS writes, the fsync batcher,
// and whatever frame was mid-append all die exactly as they would in a
// machine crash. The parent then reopens the store directory and asserts
// the WAL replays to a clean prefix: every recovered record carries
// internally consistent bytes (no torn or mixed versions), even though
// the tail of the log may be cut.

const (
	crashChildEnv = "MOCHA_CRASH_CHILD"
	crashDirEnv   = "MOCHA_CRASH_DIR"
	crashLocks    = 4
	crashPayload  = 1024
)

// crashFill writes the child's deterministic content for one round: the
// round number in the first 8 bytes, then a fill byte derived from (round,
// lock). A recovered record whose fill does not match its own round header
// mixed bytes from two versions.
func crashFill(buf []byte, round uint64, lock int) {
	binary.LittleEndian.PutUint64(buf[:8], round)
	fill := byte(round*31 + uint64(lock))
	for i := 8; i < len(buf); i++ {
		buf[i] = fill
	}
}

func TestCrashRestartSmoke(t *testing.T) {
	if os.Getenv(crashChildEnv) != "" {
		crashChildWorkload(t, os.Getenv(crashDirEnv))
		return
	}
	if testing.Short() {
		t.Skip("crash smoke spawns a child process; skipped in -short")
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashRestartSmoke$", "-test.timeout=60s")
	cmd.Env = append(os.Environ(), crashChildEnv+"=1", crashDirEnv+"="+dir)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn child: %v", err)
	}
	defer func() { _ = cmd.Process.Kill(); _, _ = cmd.Process.Wait() }()

	// Wait until the child's WAL has accumulated real load, then pull the
	// plug with SIGKILL — no deferred cleanup, no final fsync.
	deadline := time.Now().Add(20 * time.Second)
	for walBytes(dir) < 64*1024 {
		if time.Now().After(deadline) {
			t.Fatalf("child wrote only %d WAL bytes in 20s", walBytes(dir))
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill child: %v", err)
	}
	_, _ = cmd.Process.Wait()

	// Reopen the dead daemon's store: replay must succeed and every
	// surviving record must be internally consistent.
	fs, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("reopen store after crash: %v", err)
	}
	defer fs.Close()
	recs, err := fs.Recover()
	if err != nil {
		t.Fatalf("recover after crash: %v", err)
	}
	if len(recs) == 0 {
		t.Fatalf("no records survived a %dB WAL", walBytes(dir))
	}
	codec := marshal.NewFast(netsim.Native())
	for _, rec := range recs {
		if rec.Version == 0 {
			t.Errorf("lock %d recovered at version 0", rec.Lock)
		}
		if len(rec.Replicas) != 1 {
			t.Errorf("lock %d recovered %d replicas, want 1", rec.Lock, len(rec.Replicas))
			continue
		}
		content := marshal.Bytes(nil)
		if err := codec.Unmarshal(rec.Replicas[0].Data, content); err != nil {
			t.Errorf("lock %d recovered undecodable bytes: %v", rec.Lock, err)
			continue
		}
		data := content.BytesData()
		if len(data) != crashPayload {
			t.Errorf("lock %d recovered %d payload bytes, want %d", rec.Lock, len(data), crashPayload)
			continue
		}
		round := binary.LittleEndian.Uint64(data[:8])
		want := byte(round*31 + uint64(rec.Lock))
		for i := 8; i < len(data); i++ {
			if data[i] != want {
				t.Errorf("lock %d round %d: byte %d is %d, want %d — torn or mixed-version recovery",
					rec.Lock, round, i, data[i], want)
				break
			}
		}
	}
	st := fs.Stats()
	t.Logf("recovered %d records (%d appends replayed, %d truncated tails, %d skipped)",
		len(recs), st.Appends, st.TruncatedTails, st.SkippedRecords)
}

// walBytes sums the log segments under dir.
func walBytes(dir string) int64 {
	var n int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, e := range entries {
		if info, err := e.Info(); err == nil && !e.IsDir() {
			n += info.Size()
		}
	}
	return n
}

// crashChildWorkload is the killed side: a two-site cluster whose worker
// daemon is backed by the durable store, looping acquire/write/release
// over a small lock population until the parent kills the process.
func crashChildWorkload(t *testing.T, dir string) {
	if dir == "" {
		t.Fatal("child started without " + crashDirEnv)
	}
	sim := transport.NewSimNetwork(netsim.Config{Profile: netsim.LANFastEthernet(), Seed: 4242})
	directory := make(map[wire.SiteID]string, 2)
	stacks := make(map[wire.SiteID]*transport.SimStack, 2)
	for i := 1; i <= 2; i++ {
		site := wire.SiteID(i)
		stack, err := sim.NewStack(netsim.NodeID(i))
		if err != nil {
			t.Fatalf("stack %d: %v", i, err)
		}
		stacks[site] = stack
		directory[site] = stack.Datagram().LocalAddr()
	}
	nodes := make(map[wire.SiteID]*core.Node, 2)
	for i := 1; i <= 2; i++ {
		site := wire.SiteID(i)
		storeDir := ""
		if site == 2 {
			storeDir = dir
		}
		node, err := core.NewNode(core.Config{
			Site:            site,
			Endpoint:        mnet.NewEndpoint(stacks[site].Datagram(), mnet.Config{Cost: netsim.Native()}),
			Stack:           stacks[site],
			Directory:       directory,
			IsHome:          site == wire.HomeSite,
			Codec:           marshal.NewFast(netsim.Native()),
			Cost:            netsim.Native(),
			Mode:            core.ModeMNet,
			StoreDir:        storeDir,
			RequestTimeout:  5 * time.Second,
			TransferTimeout: 10 * time.Second,
			Log:             eventlog.Nop(),
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		nodes[site] = node
	}

	ctx := context.Background()
	locks := make([]*core.ReplicaLock, crashLocks)
	for i := range locks {
		name := fmt.Sprintf("crash-data-%d", i+1)
		r, err := nodes[1].CreateReplica(name, marshal.Bytes(make([]byte, crashPayload)), 2)
		if err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
		creator := nodes[1].NewHandle(fmt.Sprintf("creator-%d", i)).ReplicaLock(wire.LockID(401 + i))
		if err := creator.Associate(ctx, r); err != nil {
			t.Fatalf("associate creator %s: %v", name, err)
		}
		wr, err := nodes[2].AttachReplica(name, marshal.Bytes(nil))
		if err != nil {
			t.Fatalf("attach %s: %v", name, err)
		}
		locks[i] = nodes[2].NewHandle(fmt.Sprintf("worker-%d", i)).ReplicaLock(wire.LockID(401 + i))
		if err := locks[i].Associate(ctx, wr); err != nil {
			t.Fatalf("associate worker %s: %v", name, err)
		}
	}

	// Load loop: the parent's SIGKILL is the only way out.
	for round := uint64(1); ; round++ {
		for i, rl := range locks {
			if err := rl.Lock(ctx); err != nil {
				t.Fatalf("round %d lock %d: %v", round, i, err)
			}
			crashFill(rl.Replicas()[0].Content().BytesData(), round, 401+i)
			if err := rl.Unlock(ctx); err != nil {
				t.Fatalf("round %d unlock %d: %v", round, i, err)
			}
		}
	}
}
