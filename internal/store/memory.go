package store

import (
	"sync"

	"mocha/internal/wire"
)

// Memory is the extracted in-memory replica store: a map from lock to
// record, nothing more. It is the default backend and the paper's baseline
// — a crashed site recovers nothing locally and rebuilds purely through
// the version-poll protocol. Eviction is refused (there is no backing log
// to refault from), and Recover always returns an empty set.
type Memory struct {
	mu      sync.Mutex
	records map[wire.LockID]Record
	stats   Stats
	closed  bool
}

var _ Store = (*Memory)(nil)

// NewMemory creates an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{records: make(map[wire.LockID]Record)}
}

// Get implements Store.
func (m *Memory) Get(lock wire.LockID) (Record, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Record{}, false, ErrClosed
	}
	rec, ok := m.records[lock]
	return rec, ok, nil
}

// Put implements Store.
func (m *Memory) Put(rec Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.records[rec.Lock] = rec
	m.stats.Appends++
	return nil
}

// AppendDelta implements Store.
func (m *Memory) AppendDelta(fromVersion uint64, rec Record, deltas []wire.DeltaPayload) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	cur, ok := m.records[rec.Lock]
	if !ok || cur.Version != fromVersion {
		return ErrBadDeltaBase
	}
	patched, err := applyDeltaSet(cur.Replicas, deltas)
	if err != nil {
		return err
	}
	rec.Replicas = patched
	m.records[rec.Lock] = rec
	m.stats.Appends++
	return nil
}

// Commit implements Store.
func (m *Memory) Commit(lock wire.LockID, version uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	rec, ok := m.records[lock]
	if !ok {
		return ErrUnknownLock
	}
	if rec.Version == version {
		rec.Dirty = false
		m.records[lock] = rec
	}
	return nil
}

// Evict implements Store: always refused, payloads have no other home.
func (m *Memory) Evict(lock wire.LockID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if _, ok := m.records[lock]; !ok {
		return ErrUnknownLock
	}
	return ErrVolatile
}

// Recover implements Store: a restarted memory store is empty by
// definition, so there is never anything to recover.
func (m *Memory) Recover() ([]Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	return nil, nil
}

// Durable implements Store.
func (m *Memory) Durable() bool { return false }

// Stats implements Store.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Records = len(m.records)
	for _, rec := range m.records {
		s.CachedBytes += payloadBytes(rec.Replicas)
	}
	return s
}

// Close implements Store.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.records = nil
	return nil
}
