package mocha_test

import (
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"mocha"
)

// freePorts reserves n distinct UDP ports by binding and releasing them.
// A tiny race window remains; the caller retries on bind failure.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, 0, n)
	conns := make([]*net.UDPConn, 0, n)
	for len(ports) < n {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
		ports = append(ports, c.LocalAddr().(*net.UDPAddr).Port)
	}
	for _, c := range conns {
		_ = c.Close()
	}
	return ports
}

// TestJoinClusterRealSockets runs a two-site cluster over real UDP/TCP on
// loopback through the public deployment API — the path cmd/mochad uses.
func TestJoinClusterRealSockets(t *testing.T) {
	var sites []*mocha.Site
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		ports := freePorts(t, 2)
		directory := map[mocha.SiteID]string{
			1: fmt.Sprintf("127.0.0.1:%d", ports[0]),
			2: fmt.Sprintf("127.0.0.1:%d", ports[1]),
		}
		registry := mocha.NewRegistry()
		registry.MustRegister("Echo", func() mocha.Task {
			return mocha.TaskFunc(func(m *mocha.Mocha) {
				s, _ := m.Parameter.GetString("s")
				m.Result.AddString("s", strings.ToUpper(s))
				m.ReturnResults()
			})
		})

		sites = sites[:0]
		ok := true
		for _, id := range []mocha.SiteID{1, 2} {
			s, joinErr := mocha.JoinClusterEntries(directory, id, registry,
				mocha.WithClusterKey([]byte("loopback-secret")),
				mocha.WithTransferMode(mocha.ModeHybrid),
			)
			if joinErr != nil {
				err = joinErr
				ok = false
				break
			}
			sites = append(sites, s)
		}
		if ok {
			break
		}
		for _, s := range sites {
			_ = s.Close()
		}
	}
	if len(sites) != 2 {
		t.Fatalf("could not bind cluster: %v", err)
	}
	defer func() {
		for _, s := range sites {
			_ = s.Close()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Spawn over real UDP.
	bag := sites[0].Bag("main")
	p := mocha.NewParams()
	p.AddString("s", "over real sockets")
	rh, err := bag.Spawn(ctx, 2, "Echo", p)
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	res, err := rh.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.GetString("s"); got != "OVER REAL SOCKETS" {
		t.Fatalf("echo = %q", got)
	}

	// Share a replica over the hybrid protocol (real TCP for the data).
	r, err := bag.CreateReplica("shared", mocha.Ints(make([]int32, 2048)), 2)
	if err != nil {
		t.Fatal(err)
	}
	rl := bag.ReplicaLock(1)
	if err := rl.Associate(ctx, r); err != nil {
		t.Fatal(err)
	}
	worker := sites[1].Bag("worker")
	r2, err := worker.AttachReplica("shared", mocha.Ints(nil))
	if err != nil {
		t.Fatal(err)
	}
	rl2 := worker.ReplicaLock(1)
	if err := rl2.Associate(ctx, r2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)

	if err := rl.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	r.Content().IntsData()[0] = 321
	if err := rl.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rl2.Lock(ctx); err != nil {
		t.Fatalf("lock over real tcp: %v", err)
	}
	if got := r2.Content().IntsData()[0]; got != 321 {
		t.Fatalf("transferred = %d", got)
	}
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	// Membership join should have registered site 2 at the home.
	deadline := time.Now().Add(10 * time.Second)
	for len(sites[0].Runtime().Members()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("site 2 never joined the home over real sockets")
		}
		time.Sleep(20 * time.Millisecond)
	}

	if _, err := mocha.JoinClusterEntries(map[mocha.SiteID]string{1: "x"}, 9, nil); err == nil {
		t.Fatal("join with unknown site succeeded")
	}
}

func TestClusterFacadeSurface(t *testing.T) {
	cluster, err := mocha.NewSimCluster(3,
		mocha.WithEnvironment(mocha.Perfect()),
		mocha.WithSeed(42),
		mocha.WithMaxServers(2),
		mocha.WithTransferTimeout(30*time.Second),
		mocha.WithTaskPermissions(mocha.AllPermissions()),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if got := len(cluster.Sites()); got != 3 {
		t.Fatalf("Sites() = %d", got)
	}
	cluster.AddCode("Helper", []byte("helper image"))

	// Demand-pull the added code through the public API.
	cluster.MustRegister("Loader", func() mocha.Task {
		return mocha.TaskFunc(func(m *mocha.Mocha) {
			code, err := m.LoadClass(context.Background(), "Helper")
			if err != nil {
				m.Fail(err)
				return
			}
			m.Result.AddBytes("code", code)
			m.ReturnResults()
		})
	})
	bag := cluster.Home().Bag("main")
	rh, err := bag.Spawn(ctx, 2, "Loader", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rh.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := res.GetBytes("code"); string(code) != "helper image" {
		t.Fatalf("pulled code = %q", code)
	}

	// The partition API must actually cut traffic.
	cluster.Partition(1, 3, true)
	shortCtx, cancel2 := context.WithTimeout(ctx, 300*time.Millisecond)
	defer cancel2()
	if _, err := bag.Spawn(shortCtx, 3, "Loader", nil); err == nil {
		t.Fatal("spawn crossed a partition")
	}
	cluster.Partition(1, 3, false)

	// The timeline must carry events from the activity above.
	tl := cluster.Timeline()
	if len(tl.Records) == 0 {
		t.Fatal("empty timeline after cluster activity")
	}
	var sb strings.Builder
	if err := tl.Render(&sb, mocha.RenderOptions{MaxRecords: 10}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "site 1") {
		t.Fatalf("timeline render:\n%s", sb.String())
	}

	// Misc wrappers.
	if mocha.LAN().Name == "" || mocha.CableModem().Name == "" || mocha.NativeCost().Name == "" {
		t.Fatal("profile wrappers broken")
	}
	if mocha.Bytes([]byte{1}).SizeBytes() != 1 || mocha.Floats([]float64{1}).SizeBytes() != 8 {
		t.Fatal("content wrappers broken")
	}
	a := mocha.SessionWrite{UnixNanos: 1, Data: []byte("a")}
	b := mocha.SessionWrite{UnixNanos: 2, Data: []byte("b")}
	if string(mocha.LastWriterWins(a, b)) != "b" {
		t.Fatal("LastWriterWins wrapper broken")
	}
}

func TestTypedReplicaSet(t *testing.T) {
	cluster, err := mocha.NewSimCluster(1, mocha.WithEnvironment(mocha.Perfect()))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	bag := cluster.Home().Bag("main")
	tr, err := mocha.NewTypedReplica(bag, "cfg", map[string]int{"a": 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rl := bag.ReplicaLock(1)
	if err := rl.Associate(ctx, tr.Replica()); err != nil {
		t.Fatal(err)
	}
	if err := rl.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	tr.Set(map[string]int{"b": 2})
	if got := tr.Get(); got["b"] != 2 {
		t.Fatalf("Set/Get = %v", got)
	}
	if err := rl.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
}
