// Gridsum: a PVM-style metacomputing workload — the kind of parallel
// application Mocha's spawn/share primitives were "fashioned after
// constructs for popular local area distributed computing environments
// such as PVM" to support.
//
// The home site numerically integrates f(x) = 4/(1+x^2) over [0,1] (which
// equals pi) by partitioning the interval across worker tasks spawned at
// every site. Workers return their partial sums through Result objects
// AND accumulate into a shared replica under a ReplicaLock, so the run
// checks both cooperation styles against each other. A shared progress
// replica with UR equal to the cluster size keeps every site's progress
// view current via push dissemination.
//
//	go run ./examples/gridsum
package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"time"

	"mocha"
)

const (
	workers   = 6
	intervals = 1_200_000
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "gridsum: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	cluster, err := mocha.NewSimCluster(4,
		mocha.WithEnvironment(mocha.LAN()),
		mocha.WithOutput(os.Stdout),
		mocha.WithMaxServers(2),
	)
	if err != nil {
		return err
	}
	defer func() { _ = cluster.Close() }()

	cluster.MustRegister("PiWorker", func() mocha.Task {
		return mocha.TaskFunc(piWorker)
	})

	bag := cluster.Home().Bag("gridsum-main")

	// The shared accumulator, guarded by a ReplicaLock.
	acc, err := bag.CreateReplica("acc", mocha.Floats([]float64{0}), 4)
	if err != nil {
		return err
	}
	accLock := bag.ReplicaLock(1)
	if err := accLock.Associate(ctx, acc); err != nil {
		return err
	}

	// A progress counter disseminated to every site on each release.
	progress, err := bag.CreateReplica("progress", mocha.Ints([]int32{0}), 4)
	if err != nil {
		return err
	}
	progressLock := bag.ReplicaLock(2)
	if err := progressLock.Associate(ctx, progress); err != nil {
		return err
	}
	progressLock.SetUpdateReplicas(4)

	fmt.Printf("gridsum: integrating 4/(1+x^2) over [0,1] with %d intervals across %d workers\n",
		intervals, workers)
	start := time.Now()
	var handles []*mocha.ResultHandle
	for w := 0; w < workers; w++ {
		p := mocha.NewParams()
		p.AddInt("worker", int64(w))
		p.AddInt("workers", workers)
		p.AddInt("intervals", intervals)
		rh, err := bag.SpawnAny(ctx, "PiWorker", p)
		if err != nil {
			return fmt.Errorf("spawn worker %d: %w", w, err)
		}
		fmt.Printf("gridsum: worker %d placed at site %d\n", w, rh.Site())
		handles = append(handles, rh)
	}

	// Gather partial sums from Result objects.
	var fromResults float64
	for w, rh := range handles {
		res, err := rh.Wait(ctx)
		if err != nil {
			return fmt.Errorf("worker %d: %w", w, err)
		}
		part, err := res.GetDouble("partial")
		if err != nil {
			return err
		}
		fromResults += part
	}
	elapsed := time.Since(start)

	// Read the shared accumulator consistently.
	if err := accLock.Lock(ctx); err != nil {
		return err
	}
	fromReplica := acc.Content().FloatsData()[0]
	if err := accLock.Unlock(ctx); err != nil {
		return err
	}
	if err := progressLock.Lock(ctx); err != nil {
		return err
	}
	completed := progress.Content().IntsData()[0]
	if err := progressLock.Unlock(ctx); err != nil {
		return err
	}

	fmt.Printf("gridsum: result via Result objects  = %.12f\n", fromResults)
	fmt.Printf("gridsum: result via shared replica  = %.12f\n", fromReplica)
	fmt.Printf("gridsum: pi                         = %.12f\n", math.Pi)
	fmt.Printf("gridsum: progress replica counted %d/%d workers, wall clock %v\n",
		completed, workers, elapsed.Round(time.Millisecond))

	if math.Abs(fromResults-math.Pi) > 1e-9 {
		return fmt.Errorf("result %v too far from pi", fromResults)
	}
	if math.Abs(fromReplica-fromResults) > 1e-9 {
		return fmt.Errorf("replica accumulator %v disagrees with results %v", fromReplica, fromResults)
	}
	if completed != workers {
		return fmt.Errorf("progress = %d, want %d", completed, workers)
	}
	return nil
}

// piWorker computes one stripe of the integral, adds it to the shared
// accumulator under the lock, bumps the disseminated progress counter, and
// returns the partial through its Result object.
func piWorker(m *mocha.Mocha) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	worker, _ := m.Parameter.GetInt("worker")
	total, _ := m.Parameter.GetInt("workers")
	n, err := m.Parameter.GetInt("intervals")
	if err != nil || total == 0 {
		m.Fail(fmt.Errorf("bad parameters: %v", err))
		return
	}

	h := 1.0 / float64(n)
	var sum float64
	for i := worker; i < n; i += total {
		x := h * (float64(i) + 0.5)
		sum += 4.0 / (1.0 + x*x)
	}
	partial := sum * h

	// Entry-consistent accumulation into the shared replica.
	acc, err := m.AttachReplica("acc", mocha.Floats(nil))
	if err != nil {
		m.Fail(err)
		return
	}
	accLock := m.ReplicaLock(1)
	if err := accLock.Associate(ctx, acc); err != nil {
		m.Fail(err)
		return
	}
	if err := accLock.Lock(ctx); err != nil {
		m.Fail(err)
		return
	}
	acc.Content().FloatsData()[0] += partial
	if err := accLock.Unlock(ctx); err != nil {
		m.Fail(err)
		return
	}

	// Progress, pushed to every site at release time.
	progress, err := m.AttachReplica("progress", mocha.Ints(nil))
	if err != nil {
		m.Fail(err)
		return
	}
	progressLock := m.ReplicaLock(2)
	if err := progressLock.Associate(ctx, progress); err != nil {
		m.Fail(err)
		return
	}
	progressLock.SetUpdateReplicas(4)
	if err := progressLock.Lock(ctx); err != nil {
		m.Fail(err)
		return
	}
	progress.Content().IntsData()[0]++
	if err := progressLock.Unlock(ctx); err != nil {
		m.Fail(err)
		return
	}

	m.MochaPrintf("worker %d done: partial %.12f", worker, partial)
	m.Result.AddDouble("partial", partial)
	m.ReturnResults()
}
