// Fault tolerance: the Section 4 refinements demonstrated live.
//
// Act 1 — losing the newest version (UR=1): a writer produces an update
// that no other site holds, then its machine dies. The next reader
// receives the most recent *surviving* old version — the paper's weakened
// consistency.
//
// Act 2 — surviving via dissemination (UR=2): the writer's release pushes
// the new value to one more daemon before the crash, so the newest version
// survives the failure.
//
// Act 3 — breaking a dead holder's lock: a task dies while holding the
// lock; the synchronization thread detects the expired lease, confirms the
// failure with a heartbeat, breaks the lock, gives it to the next thread,
// and bans the dead one.
//
//	go run ./examples/faulttolerance
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"mocha"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "faulttolerance: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	if err := act1LostVersion(ctx); err != nil {
		return fmt.Errorf("act 1: %w", err)
	}
	if err := act2Dissemination(ctx); err != nil {
		return fmt.Errorf("act 2: %w", err)
	}
	if err := act3LockBreaking(ctx); err != nil {
		return fmt.Errorf("act 3: %w", err)
	}
	fmt.Println("\nfaulttolerance: all three scenarios behaved as the paper describes")
	return nil
}

// newCluster builds a 4-site cluster with fast failure detection.
func newCluster() (*mocha.Cluster, error) {
	return mocha.NewSimCluster(4,
		mocha.WithEnvironment(mocha.LAN()),
		mocha.WithRequestTimeout(time.Second),
		mocha.WithLease(500*time.Millisecond),
		mocha.WithLeaseSweep(100*time.Millisecond),
	)
}

// setup creates the shared value at the home site and attaches it at every
// other site, returning per-site locks and replicas.
func setup(ctx context.Context, cluster *mocha.Cluster) (map[mocha.SiteID]*mocha.ReplicaLock, map[mocha.SiteID]*mocha.Replica, error) {
	locks := make(map[mocha.SiteID]*mocha.ReplicaLock)
	replicas := make(map[mocha.SiteID]*mocha.Replica)
	for _, site := range []mocha.SiteID{1, 2, 3, 4} {
		bag := cluster.Site(site).Bag(fmt.Sprintf("site%d", site))
		var r *mocha.Replica
		var err error
		if site == 1 {
			r, err = bag.CreateReplica("balance", mocha.Ints([]int32{100}), 4)
		} else {
			r, err = bag.AttachReplica("balance", mocha.Ints(nil))
		}
		if err != nil {
			return nil, nil, err
		}
		rl := bag.ReplicaLock(7)
		if err := rl.Associate(ctx, r); err != nil {
			return nil, nil, err
		}
		locks[site] = rl
		replicas[site] = r
	}
	time.Sleep(100 * time.Millisecond) // let registrations settle
	return locks, replicas, nil
}

func act1LostVersion(ctx context.Context) error {
	fmt.Println("== Act 1: newest version lost with UR=1 (weakened consistency) ==")
	cluster, err := newCluster()
	if err != nil {
		return err
	}
	defer func() { _ = cluster.Close() }()
	locks, replicas, err := setup(ctx, cluster)
	if err != nil {
		return err
	}

	fmt.Println("site 2 writes balance=200 with UR=1 (no dissemination), then its machine dies")
	if err := locks[2].Lock(ctx); err != nil {
		return err
	}
	replicas[2].Content().IntsData()[0] = 200
	if err := locks[2].Unlock(ctx); err != nil {
		return err
	}
	cluster.Kill(2)

	fmt.Println("site 3 acquires: the synchronization thread's transfer directive times out,")
	fmt.Println("it polls the surviving daemons, and forwards the most recent old version")
	if err := locks[3].Lock(ctx); err != nil {
		return err
	}
	got := replicas[3].Content().IntsData()[0]
	if err := locks[3].Unlock(ctx); err != nil {
		return err
	}
	fmt.Printf("site 3 sees balance=%d — the creator's value; the 200 died with site 2\n\n", got)
	if got != 100 {
		return fmt.Errorf("expected the surviving old version 100, got %d", got)
	}
	return nil
}

func act2Dissemination(ctx context.Context) error {
	fmt.Println("== Act 2: newest version survives with UR=2 (push-based dissemination) ==")
	cluster, err := newCluster()
	if err != nil {
		return err
	}
	defer func() { _ = cluster.Close() }()
	locks, replicas, err := setup(ctx, cluster)
	if err != nil {
		return err
	}

	fmt.Println("site 2 writes balance=200 with UR=2: the release pushes the value to another daemon")
	locks[2].SetUpdateReplicas(2)
	if err := locks[2].Lock(ctx); err != nil {
		return err
	}
	replicas[2].Content().IntsData()[0] = 200
	if err := locks[2].Unlock(ctx); err != nil {
		return err
	}
	cluster.Kill(2)
	fmt.Println("site 2's machine dies")

	if err := locks[4].Lock(ctx); err != nil {
		return err
	}
	got := replicas[4].Content().IntsData()[0]
	if err := locks[4].Unlock(ctx); err != nil {
		return err
	}
	fmt.Printf("site 4 sees balance=%d — the newest version survived the failure\n\n", got)
	if got != 200 {
		return fmt.Errorf("expected the disseminated version 200, got %d", got)
	}
	return nil
}

func act3LockBreaking(ctx context.Context) error {
	fmt.Println("== Act 3: lock held by a dead thread is broken and the thread banned ==")
	cluster, err := newCluster()
	if err != nil {
		return err
	}
	defer func() { _ = cluster.Close() }()
	locks, replicas, err := setup(ctx, cluster)
	if err != nil {
		return err
	}

	fmt.Println("site 3 acquires the lock (declared lease 500ms) and dies holding it")
	if err := locks[3].Lock(ctx); err != nil {
		return err
	}
	cluster.Kill(3)

	fmt.Println("site 1 requests the lock; the synchronization thread sees the lease expire,")
	fmt.Println("heartbeats the dead daemon, breaks the lock, and grants it to site 1")
	start := time.Now()
	if err := locks[1].Lock(ctx); err != nil {
		return err
	}
	fmt.Printf("site 1 acquired after %v with balance=%d intact\n",
		time.Since(start).Round(time.Millisecond), replicas[1].Content().IntsData()[0])
	if err := locks[1].Unlock(ctx); err != nil {
		return err
	}

	// The home's event log records the break.
	breaks := 0
	for _, e := range cluster.Home().Node().Log().Events() {
		if e.Category == "fault" {
			fmt.Printf("home event log: %s\n", e.Text)
			breaks++
		}
	}
	if breaks == 0 {
		return fmt.Errorf("no fault events recorded")
	}
	return nil
}
