// Whiteboard: the non-synchronization-based consistency mode in action —
// the future work the paper's conclusion announces ("support for
// applications which require non-synchronization based solutions for
// maintaining consistency"), in the style of the systems it cites (Bayou,
// Coda, Rover): optimistic replication with conflict detection and
// resolution instead of locks, plus session guarantees.
//
// Three users annotate a shared design brief. Nobody takes a lock: every
// write applies locally at once and gossips outward. A network partition
// splits the friends from the designer; both sides keep writing, and on
// heal the anti-entropy protocol detects the concurrent versions and
// resolves them deterministically. A session moving between replicas
// demonstrates read-your-writes.
//
//	go run ./examples/whiteboard
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"mocha"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "whiteboard: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Resolve conflicting briefs by keeping the longer text (a content
	// policy; the default is last-writer-wins).
	cluster, err := mocha.NewSimCluster(3,
		mocha.WithEnvironment(mocha.LAN()),
		mocha.WithResolver(func(local, incoming mocha.SessionWrite) []byte {
			if len(incoming.Data) > len(local.Data) {
				return incoming.Data
			}
			if len(incoming.Data) == len(local.Data) {
				return mocha.LastWriterWins(local, incoming)
			}
			return local.Data
		}),
	)
	if err != nil {
		return err
	}
	defer func() { _ = cluster.Close() }()

	stores := make(map[mocha.SiteID]*mocha.SessionStore, 3)
	for _, id := range []mocha.SiteID{1, 2, 3} {
		st, err := cluster.Site(id).Sessions()
		if err != nil {
			return err
		}
		stores[id] = st
	}

	fmt.Println("— no locks: the designer posts the brief; it gossips everywhere —")
	stores[1].Write("brief", []byte("v1: blue palette"), nil)
	if err := await(stores[3], "brief", "v1: blue palette"); err != nil {
		return err
	}
	fmt.Printf("friend's replica shows: %s\n\n", read(stores[3], "brief"))

	fmt.Println("— partition: designer (site 1) separated from sites 2 and 3 —")
	cluster.Partition(1, 2, true)
	cluster.Partition(1, 3, true)
	stores[1].Write("brief", []byte("v2a: blue palette, serif type"), nil)
	stores[3].Write("brief", []byte("v2b: green palette!"), nil)
	fmt.Printf("designer's side : %s\n", read(stores[1], "brief"))
	fmt.Printf("friends' side   : %s\n\n", read(stores[3], "brief"))

	fmt.Println("— heal: anti-entropy detects the concurrent versions and resolves —")
	cluster.Partition(1, 2, false)
	cluster.Partition(1, 3, false)
	for i := 0; i < 4; i++ {
		for _, st := range stores {
			st.PullOnce()
		}
		time.Sleep(20 * time.Millisecond)
	}
	want := "v2a: blue palette, serif type" // the longer text wins
	for id, st := range stores {
		if err := await(st, "brief", want); err != nil {
			return fmt.Errorf("site %d: %w", id, err)
		}
	}
	fmt.Printf("all replicas converged to: %s\n", read(stores[1], "brief"))
	conflicts := int64(0)
	for _, st := range stores {
		conflicts += st.Stats().Conflicts
	}
	fmt.Printf("conflicts detected and resolved: %d\n\n", conflicts)

	fmt.Println("— session guarantees: a user hops replicas without going back in time —")
	se := mocha.NewSession()
	if err := se.Write(ctx, stores[2], "brief", []byte("v3: final — blue, serif, gold accents")); err != nil {
		return err
	}
	// Reading at a DIFFERENT replica: read-your-writes makes the session
	// wait until site 3 has the v3 write rather than serving v2.
	data, err := se.Read(ctx, stores[3], "brief")
	if err != nil {
		return err
	}
	fmt.Printf("session read at another replica: %s\n", data)
	if string(data) != "v3: final — blue, serif, gold accents" {
		return fmt.Errorf("read-your-writes violated: %q", data)
	}
	fmt.Println("\nwhiteboard: optimistic sharing converged; session guarantees held")
	return nil
}

// read returns the current local value (may be stale — that is the point).
func read(st *mocha.SessionStore, name string) string {
	data, _, _ := st.Read(name)
	return string(data)
}

// await polls a store until it holds want.
func await(st *mocha.SessionStore, name, want string) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		if read(st, name) == want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%q never converged to %q (have %q)", name, want, read(st, name))
		}
		st.PullOnce()
		time.Sleep(20 * time.Millisecond)
	}
}
