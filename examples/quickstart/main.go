// Quickstart: the paper's Figures 1 and 2 as a runnable program.
//
// A Mocha application spawns the Myhello class at remote sites with a
// Parameter object, and each remotely evaluated task prints through the
// home console, computes, and returns a Result object.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"mocha"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Three simulated sites on the LAN profile; site 1 is home.
	cluster, err := mocha.NewSimCluster(3,
		mocha.WithEnvironment(mocha.LAN()),
		mocha.WithOutput(os.Stdout),
	)
	if err != nil {
		return err
	}
	defer func() { _ = cluster.Close() }()

	// The Myhello class of Figure 2: read the "start" parameter, add one,
	// report home.
	cluster.MustRegister("Myhello", func() mocha.Task {
		return mocha.TaskFunc(func(m *mocha.Mocha) {
			start, err := m.Parameter.GetDouble("start")
			if err != nil {
				// The Figure 2 error path: remote stack dumps.
				m.MochaPrintStackTrace(err)
				m.Fail(err)
				return
			}
			sum := start + 1
			m.MochaPrintf("Returning as a return value %v", sum)
			m.Result.AddDouble("returnvalue", sum)
			m.ReturnResults()
		})
	})

	// The TestMocha main of Figure 1: build parameters and spawn.
	bag := cluster.Home().Bag("TestMocha")
	for _, site := range []mocha.SiteID{2, 3} {
		p := mocha.NewParams()
		p.AddDouble("start", float64(site)*100)

		rh, err := bag.Spawn(ctx, site, "Myhello", p)
		if err != nil {
			return fmt.Errorf("spawn at site %d: %w", site, err)
		}
		res, err := rh.Wait(ctx)
		if err != nil {
			return fmt.Errorf("await site %d: %w", site, err)
		}
		v, err := res.GetDouble("returnvalue")
		if err != nil {
			return err
		}
		fmt.Printf("quickstart: site %d returned %v\n", site, v)
	}

	// And the error path: a spawn with missing parameters produces a
	// remote stack dump on the home console.
	rh, err := bag.Spawn(ctx, 2, "Myhello", mocha.NewParams())
	if err != nil {
		return err
	}
	if _, err := rh.Wait(ctx); err != nil {
		fmt.Printf("quickstart: expected failure reported: %v\n", err)
	}
	// Give the remote stack dump a moment to reach the console.
	time.Sleep(200 * time.Millisecond)
	return nil
}
