// Table-setting coordinator: the home service application of Sections 2
// and 5.1, headless.
//
// A consumer at home, a sales associate at the retail outlet, and a friend
// at another home each run a coordinator "GUI" that shows one flatware,
// plate, and glassware combination. Pressing next/previous buttons updates
// shared index replicas guarded by one ReplicaLock; a comment string is
// shared the same way; and the catalog images are replicas deliberately
// NOT associated with any lock — they are cached at each host without
// consistency maintenance, exactly as in the paper. A polling thread in
// each GUI redraws when the shared indices change.
//
// The run ends by measuring the Section 5.1 consistency cost of the shared
// replicas in the wide-area environment (paper: marshal 3 ms + lock 19 ms
// + transfer 44 ms = 66 ms).
//
//	go run ./examples/tablesetting
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"mocha"
)

// catalog is the retailer's item list; images are synthetic blobs.
var (
	flatware  = []string{"Baroque Silver", "Modern Steel", "Rustic Pewter"}
	plates    = []string{"White Bone China", "Blue Stoneware", "Floral Porcelain"}
	glassware = []string{"Cut Crystal", "Simple Flute", "Amber Goblet"}
)

// participants drive the scripted session in turn order.
var participants = []struct {
	site   mocha.SiteID
	name   string
	action string // which index the participant advances
	remark string
}{
	{site: 1, name: "home consumer", action: "flatware", remark: "How about these?"},
	{site: 2, name: "sales associate", action: "plate", remark: "The blue stoneware is on sale."},
	{site: 3, name: "friend", action: "glassware", remark: "Crystal is too formal — try the flutes!"},
	{site: 1, name: "home consumer", action: "glassware", remark: "Good Choice"},
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "tablesetting: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// The wide-area environment of Section 5.1 with the 1997 platform
	// cost model, so the measured consistency costs land near the paper's.
	cluster, err := mocha.NewSimCluster(3,
		mocha.WithEnvironment(mocha.WAN()),
		mocha.WithCostModel(mocha.JDK1Cost()),
		mocha.WithJavaCodec(),
		mocha.WithOutput(os.Stdout),
	)
	if err != nil {
		return err
	}
	defer func() { _ = cluster.Close() }()

	fmt.Println("tablesetting: distributing catalog images as cached replicas (no consistency maintenance)")
	if err := distributeImages(ctx, cluster); err != nil {
		return err
	}

	// The home consumer's shared state (Figure 3): three index replicas
	// and a comment string under one ReplicaLock.
	home := cluster.Home().Bag("home-gui")
	rlock := home.ReplicaLock(1)
	indices := map[string]*mocha.Replica{}
	for _, name := range []string{"flatwareIndex", "plateIndex", "glasswareIndex", "turn"} {
		r, err := home.CreateReplica(name, mocha.Ints([]int32{0}), 3)
		if err != nil {
			return err
		}
		if err := rlock.Associate(ctx, r); err != nil {
			return err
		}
		indices[name] = r
	}
	comment := mocha.NewStringValue("Hello World")
	text, err := home.CreateReplica("text", mocha.Object(comment), 3)
	if err != nil {
		return err
	}
	if err := rlock.Associate(ctx, text); err != nil {
		return err
	}

	// Ship the GUI to the remote sites.
	cluster.MustRegister("CoordinatorGUI", func() mocha.Task {
		return mocha.TaskFunc(runRemoteGUI)
	})
	var guis []*mocha.ResultHandle
	for _, site := range []mocha.SiteID{2, 3} {
		rh, err := home.Spawn(ctx, site, "CoordinatorGUI", nil)
		if err != nil {
			return err
		}
		guis = append(guis, rh)
	}

	// The home consumer takes part in the same scripted session.
	if err := driveSession(ctx, "home consumer", 1, rlock, indices, comment); err != nil {
		return err
	}
	for _, rh := range guis {
		if _, err := rh.Wait(ctx); err != nil {
			return err
		}
	}

	// Final state, read consistently.
	if err := rlock.Lock(ctx); err != nil {
		return err
	}
	fmt.Printf("tablesetting: final selection — %s\n", renderSetting(
		indices["flatwareIndex"].Content().IntsData()[0],
		indices["plateIndex"].Content().IntsData()[0],
		indices["glasswareIndex"].Content().IntsData()[0],
		comment.Get()))
	if err := rlock.Unlock(ctx); err != nil {
		return err
	}

	return measureConsistencyCost(ctx, cluster)
}

// distributeImages publishes the catalog's images to every site as cached
// replicas.
func distributeImages(ctx context.Context, cluster *mocha.Cluster) error {
	names := append(append(append([]string{}, flatware...), plates...), glassware...)
	for _, item := range names {
		img := []byte("JPEG-bytes-of-" + item)
		// Subscribers register the cached replica before the publisher
		// pushes it.
		for _, site := range []mocha.SiteID{2, 3} {
			r, err := cluster.Site(site).Node().AttachReplica("img:"+item, mocha.Bytes(nil))
			if err != nil {
				return err
			}
			if err := cluster.Site(site).Node().RegisterCached(r); err != nil {
				return err
			}
		}
		pub, err := cluster.Home().Node().CreateReplica("img:"+item, mocha.Bytes(img), 3)
		if err != nil {
			return err
		}
		if err := cluster.Home().Node().PublishCached(ctx, pub, nil); err != nil {
			return err
		}
	}
	return nil
}

// runRemoteGUI is the shipped coordinator task: attach the shared state,
// then alternate between polling the display and taking scripted turns.
func runRemoteGUI(m *mocha.Mocha) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	rlock := m.ReplicaLock(1)
	indices := map[string]*mocha.Replica{}
	for _, name := range []string{"flatwareIndex", "plateIndex", "glasswareIndex", "turn"} {
		r, err := m.AttachReplica(name, mocha.Ints(nil))
		if err != nil {
			m.Fail(err)
			return
		}
		if err := rlock.Associate(ctx, r); err != nil {
			m.Fail(err)
			return
		}
		indices[name] = r
	}
	comment := mocha.NewStringValue("")
	text, err := m.AttachReplica("text", mocha.Object(comment))
	if err != nil {
		m.Fail(err)
		return
	}
	if err := rlock.Associate(ctx, text); err != nil {
		m.Fail(err)
		return
	}

	name := "sales associate"
	if m.Site() == 3 {
		name = "friend"
	}
	if err := driveSession(ctx, name, m.Site(), rlock, indices, comment); err != nil {
		m.Fail(err)
		return
	}
	m.ReturnResults()
}

// driveSession plays one participant's part: poll the shared indices (the
// paper's periodic polling thread), redraw on change, and when it is this
// participant's turn, press the "next" button and leave a comment.
func driveSession(ctx context.Context, name string, site mocha.SiteID, rlock *mocha.ReplicaLock, indices map[string]*mocha.Replica, comment *mocha.StringValue) error {
	lastShown := int32(-1)
	for {
		if err := rlock.Lock(ctx); err != nil {
			return err
		}
		t := indices["turn"].Content().IntsData()[0]
		f := indices["flatwareIndex"].Content().IntsData()[0]
		p := indices["plateIndex"].Content().IntsData()[0]
		g := indices["glasswareIndex"].Content().IntsData()[0]
		c := comment.Get()

		if t != lastShown {
			fmt.Printf("  [%s display] %s\n", name, renderSetting(f, p, g, c))
			lastShown = t
		}
		if int(t) >= len(participants) {
			// Session over.
			return rlock.Unlock(ctx)
		}
		if actor := participants[t]; actor.site == site {
			// Our button press: advance the chosen index, update the
			// comment, bump the turn — all under one lock hold, so the
			// update is atomic and consistent.
			key := actor.action + "Index"
			data := indices[key].Content().IntsData()
			data[0] = (data[0] + 1) % 3
			comment.Set(actor.remark)
			indices["turn"].Content().IntsData()[0] = t + 1
			fmt.Printf("  [%s] presses next-%s: %q\n", name, actor.action, actor.remark)
			if err := rlock.Unlock(ctx); err != nil {
				return err
			}
			continue
		}
		if err := rlock.Unlock(ctx); err != nil {
			return err
		}
		// Poll again shortly, as the paper's GUI thread does.
		select {
		case <-time.After(30 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// renderSetting formats the current table setting.
func renderSetting(f, p, g int32, comment string) string {
	return fmt.Sprintf("flatware=%q plate=%q glassware=%q comment=%q",
		flatware[f%3], plates[p%3], glassware[g%3], comment)
}

// measureConsistencyCost reproduces the Section 5.1 measurement on the
// live application state.
func measureConsistencyCost(ctx context.Context, cluster *mocha.Cluster) error {
	bag := cluster.Site(2).Bag("measure")
	rlock := bag.ReplicaLock(1)

	// Lock acquisition when up to date (VERSIONOK).
	if err := rlock.Lock(ctx); err != nil {
		return err
	}
	if err := rlock.Unlock(ctx); err != nil {
		return err
	}
	start := time.Now()
	if err := rlock.Lock(ctx); err != nil {
		return err
	}
	lockCost := time.Since(start)
	if err := rlock.Unlock(ctx); err != nil {
		return err
	}

	// Lock acquisition with a pending remote update (includes transfer).
	homeLock := cluster.Home().Bag("measure-home").ReplicaLock(1)
	if err := homeLock.Lock(ctx); err != nil {
		return err
	}
	if err := homeLock.Unlock(ctx); err != nil {
		return err
	}
	start = time.Now()
	if err := rlock.Lock(ctx); err != nil {
		return err
	}
	withTransfer := time.Since(start)
	if err := rlock.Unlock(ctx); err != nil {
		return err
	}

	transfer := withTransfer - lockCost
	if transfer < 0 {
		transfer = 0
	}
	fmt.Printf("tablesetting: consistency cost (WAN): lock %.0f ms + transfer %.0f ms = %.0f ms"+
		" (paper: lock 19 + transfer 44 + marshal 3 = 66 ms)\n",
		float64(lockCost)/1e6, float64(transfer)/1e6, float64(withTransfer)/1e6)
	return nil
}
