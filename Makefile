GO ?= go

.PHONY: check fmt-check vet build test race bench-fanout bench-delta bench-sync

# check is the full CI gate: formatting, static analysis, build, the
# complete test suite, and the race detector over the concurrency-heavy
# packages.
check: fmt-check vet build test race

# fmt-check fails if any Go file is not gofmt-clean.
fmt-check:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The dissemination fan-out and the mnet sender run many goroutines over
# shared packet buffers; keep them race-clean.
race:
	$(GO) test -race ./internal/mnet ./internal/core

bench-fanout:
	$(GO) run ./cmd/benchmocha -exp ablate-fanout -json

bench-delta:
	$(GO) run ./cmd/benchmocha -exp ablate-delta -json

bench-sync:
	$(GO) run ./cmd/benchmocha -exp ablate-syncstall -json
