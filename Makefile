GO ?= go

.PHONY: check fmt-check vet build test race fuzz-smoke crash-smoke explore cover bench-fanout bench-delta bench-sync bench-obs bench-load bench-tree bench-home bench-store

# check is the full CI gate: formatting, static analysis, build, the
# complete test suite, the race detector over the concurrency-heavy
# packages, short fuzz passes over the wire and WAL-record decoders, and
# the kill -9 crash-recovery smoke over the durable store.
check: fmt-check vet build test race fuzz-smoke crash-smoke

# fmt-check fails if any Go file is not gofmt-clean.
fmt-check:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Everything from the mnet sender to the fault-schedule explorer runs many
# goroutines over shared state; keep the whole module race-clean. -short
# skips the long stress and explorer workloads, which the plain test target
# already covers without the race detector's slowdown.
race:
	$(GO) test -race -short ./...

# fuzz-smoke runs the wire-decoder fuzzer briefly on top of its checked-in
# corpus (testdata/fuzz). Long open-ended fuzzing is a background job, not
# a CI gate; five seconds is enough to catch a decoder regression against
# everything the corpus has already discovered.
fuzz-smoke:
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzUnmarshal -fuzztime 5s
	$(GO) test ./internal/store -run '^$$' -fuzz FuzzWALRecord -fuzztime 5s

# crash-smoke SIGKILLs a child process running a store-backed daemon
# mid-load and asserts the reopened store recovers a clean, committed
# prefix of what the child persisted.
crash-smoke:
	$(GO) test ./internal/store -run 'TestCrashRestartSmoke$$' -count=1 -v

# explore runs a time-budgeted coverage-guided fault-exploration session
# (default 60s; override with EXPLORE_BUDGET). It honors MOCHA_TEST_SEED
# for the workload base seed and prints the corpus signature plus replay
# commands for anything the monitor catches.
EXPLORE_BUDGET ?= 60s
explore:
	$(GO) test ./internal/check -run 'TestExploreGuided$$' -count=1 -v -explore $(EXPLORE_BUDGET)

# cover enforces statement-coverage floors on the packages that implement
# the protocol (core) and its encoding (wire). The floors are set a few
# points under current coverage so genuinely new untested code fails the
# gate without every refactor tripping it.
cover:
	@set -e; \
	for spec in "./internal/core 80" "./internal/wire 90" "./internal/check 85" "./internal/obs 85" "./internal/mnet 80" "./internal/netsim 80" "./internal/overlay 80" "./internal/placement 80" "./internal/transport 70" "./internal/store 80"; do \
		pkg="$${spec% *}"; floor="$${spec#* }"; \
		line="$$($(GO) test -cover $$pkg | tail -1)"; \
		echo "$$line"; \
		pct="$$(echo "$$line" | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p')"; \
		if [ -z "$$pct" ]; then echo "no coverage reported for $$pkg"; exit 1; fi; \
		if [ "$$(awk -v p="$$pct" -v f="$$floor" 'BEGIN{print (p>=f)?1:0}')" != 1 ]; then \
			echo "$$pkg coverage $$pct% is below the $$floor% floor"; exit 1; \
		fi; \
	done

bench-fanout:
	$(GO) run ./cmd/benchmocha -exp ablate-fanout -json

bench-delta:
	$(GO) run ./cmd/benchmocha -exp ablate-delta -json

bench-sync:
	$(GO) run ./cmd/benchmocha -exp ablate-syncstall -json

# bench-obs measures the observability plane's cost: the same fan-out and
# delta workloads run with metrics off and on, and the run fails if the
# instrumented legs record nothing. Emits BENCH_obs.json.
bench-obs:
	$(GO) run ./cmd/benchmocha -exp ablate-obs -json

# bench-load drives the open-loop harness at 100 sites / 10k locks over
# both I/O paths (serial ablation, then batched + timer wheel) with the
# history checker on, and fails if an instrumented leg records nothing.
# The serial leg drains a large backlog, so expect ~10 minutes. Emits
# BENCH_load.json.
bench-load:
	$(GO) run ./cmd/benchmocha -exp load -json

# bench-tree compares flat O(sharers) release dissemination against the
# locality-aware relay tree at 200 sites over an 8-region simulated WAN,
# with the history checker on in both legs. Emits BENCH_tree.json.
bench-tree:
	$(GO) run ./cmd/benchmocha -exp ablate-tree -json

# bench-home kills a lock-home site under both placement strategies: the
# paper's fixed home strands its whole lock namespace, while the
# consistent-hash ring with standby promotion leaves every lock
# acquirable. The history checker runs on both legs. Emits
# BENCH_home.json.
bench-home:
	$(GO) run ./cmd/benchmocha -exp ablate-home -json

# bench-store kills and restarts a worker site under both replica-store
# backends: the paper's in-memory baseline loses everything and refetches
# every lock, while the durable store replays its WAL and re-joins at the
# persisted versions with zero transfers. A third leg runs the durable
# store under a memory cap below the working set (eviction + refault).
# The online monitor and history checker run on the restart legs. Emits
# BENCH_store.json.
bench-store:
	$(GO) run ./cmd/benchmocha -exp ablate-store -json
