GO ?= go

.PHONY: check vet build test race bench-fanout

# check is the full CI gate: static analysis, build, the complete test
# suite, and the race detector over the concurrency-heavy packages.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The dissemination fan-out and the mnet sender run many goroutines over
# shared packet buffers; keep them race-clean.
race:
	$(GO) test -race ./internal/mnet ./internal/core

bench-fanout:
	$(GO) run ./cmd/benchmocha -exp ablate-fanout
