// Package mocha is a Go implementation of Mocha, the wide-area computing
// infrastructure with robust state sharing described in:
//
//	Brad Topol, Mustaque Ahamad, John T. Stasko.
//	"Robust State Sharing for Wide Area Distributed Applications."
//	ICDCS 1998 (GIT-CC-97-25).
//
// Mocha lets a distributed application spawn threads at remote sites,
// ship them code and parameters, and share state through Replica objects
// kept consistent with entry-consistency semantics: replicas are
// associated with a ReplicaLock, and holding the lock guarantees the
// replicas reflect the most recent update. The system tolerates wide-area
// failures: updates can be disseminated to several sites at release time
// (trading bandwidth for availability), dead lock holders are detected by
// lease expiry and heartbeats and their locks broken, and lost replica
// versions are recovered from the most recent surviving copy.
//
// Two deployment forms are supported. NewSimCluster runs any number of
// sites inside one process over a simulated network whose profiles
// reproduce the paper's LAN/WAN environments (including the 1997 JVM cost
// model used to regenerate the paper's figures). JoinCluster runs one
// site per process over real UDP/TCP sockets using a host file, via
// cmd/mochad.
//
// A minimal program:
//
//	cluster, _ := mocha.NewSimCluster(3)
//	defer cluster.Close()
//	cluster.Register("Myhello", func() mocha.Task {
//	    return mocha.TaskFunc(func(m *mocha.Mocha) {
//	        start, _ := m.Parameter.GetDouble("start")
//	        m.Result.AddDouble("returnvalue", start+1)
//	        m.ReturnResults()
//	    })
//	})
//	bag := cluster.Home().Bag("main")
//	p := mocha.NewParams()
//	p.AddDouble("start", 41)
//	rh, _ := bag.SpawnAny(ctx, "Myhello", p)
//	res, _ := rh.Wait(ctx)
package mocha

import (
	"time"

	"mocha/internal/core"
	"mocha/internal/marshal"
	"mocha/internal/netsim"
	"mocha/internal/obs"
	"mocha/internal/runtime"
	"mocha/internal/session"
	"mocha/internal/trace"
	"mocha/internal/wire"
)

// Aliases re-export the implementation types so applications only import
// this package.
type (
	// SiteID identifies a participating site; site 1 is the home site.
	SiteID = wire.SiteID
	// LockID identifies a ReplicaLock cluster-wide.
	LockID = wire.LockID
	// Task is the MochaTask interface tasks implement.
	Task = runtime.Task
	// TaskFunc adapts a function to Task.
	TaskFunc = runtime.TaskFunc
	// Factory instantiates a registered task class.
	Factory = runtime.Factory
	// Registry maps class names to factories.
	Registry = runtime.Registry
	// Params is the Parameter/Result bag.
	Params = runtime.Params
	// Mocha is the travel bag handed to every task.
	Mocha = runtime.Mocha
	// ResultHandle tracks a spawned task.
	ResultHandle = runtime.ResultHandle
	// Permissions is the per-task capability set.
	Permissions = runtime.Permissions
	// Replica is one named shared object at one site.
	Replica = core.Replica
	// ReplicaLock guards associated replicas with entry consistency.
	ReplicaLock = core.ReplicaLock
	// Handle identifies an application thread.
	Handle = core.Handle
	// Content is a replica's typed payload.
	Content = marshal.Content
	// Serializable is the hook complex shared objects implement.
	Serializable = marshal.Serializable
	// StringValue is a shareable string (the generated StringReplica).
	StringValue = marshal.StringValue
	// TransferMode selects the replica transfer protocol.
	TransferMode = core.TransferMode
	// Profile describes a network environment.
	Profile = netsim.Profile
	// CostModel models platform execution costs.
	CostModel = netsim.CostModel
	// SyncState is a synchronization-thread snapshot for failover.
	SyncState = core.SyncState
	// SessionStore is the non-synchronization-based (optimistic) object
	// store — the paper's announced future work, after Bayou and [TDP+94].
	SessionStore = session.Store
	// Session enforces Terry-style session guarantees over any store.
	Session = session.Session
	// SessionVector is a version vector.
	SessionVector = session.Vector
	// SessionWrite is one stamped optimistic update.
	SessionWrite = session.Write
	// Resolver settles concurrent optimistic writes.
	Resolver = session.Resolver
	// Metrics is the lock-free observability registry: named counters,
	// gauges, and fixed-bucket latency histograms for every protocol
	// phase, plus a ring of recent per-operation spans.
	Metrics = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a Metrics registry,
	// exportable as JSON or Prometheus text.
	MetricsSnapshot = obs.Snapshot
	// Span is one in-flight operation trace (acquire, release) tagged
	// with site, lock, and version.
	Span = obs.Span
	// Timeline is a merged cross-site event trace for visualization.
	Timeline = trace.Timeline
	// RenderOptions tunes Timeline rendering.
	RenderOptions = trace.RenderOptions
)

// Instrument identifiers, re-exported so callers outside the module can
// read individual counters, gauges, and histograms from a Metrics
// registry (Snapshot keys use the exported mocha_* names instead).
const (
	// Lock protocol counters.
	CAcquireRequests = obs.CAcquireRequests
	CGrants          = obs.CGrants
	CReleases        = obs.CReleases
	CLeaseBreaks     = obs.CLeaseBreaks
	CBans            = obs.CBans
	CDaemonPolls     = obs.CDaemonPolls
	// Dissemination and transfer counters.
	CPushes          = obs.CPushes
	CPushAcks        = obs.CPushAcks
	CTransfersFull   = obs.CTransfersFull
	CTransfersDelta  = obs.CTransfersDelta
	CDeltaFallbacks  = obs.CDeltaFallbacks
	CTransfersHybrid = obs.CTransfersHybrid
	CTransfersMNet   = obs.CTransfersMNet
	CTransferBytes   = obs.CTransferBytes
	CApplies         = obs.CApplies
	// Transport and MNet counters.
	CStreamDials    = obs.CStreamDials
	CStreamAccepts  = obs.CStreamAccepts
	CStreamBytesOut = obs.CStreamBytesOut
	CStreamBytesIn  = obs.CStreamBytesIn
	CMsgsSent       = obs.CMsgsSent
	CMsgsDelivered  = obs.CMsgsDelivered
	CRetransmits    = obs.CRetransmits
	CSendFailures   = obs.CSendFailures
	CQueueDrops     = obs.CQueueDrops
	// Gauges.
	GSyncQueueDepth = obs.GSyncQueueDepth
	GSyncLocks      = obs.GSyncLocks
	// Per-phase latency histograms.
	HAcquireTotal = obs.HAcquireTotal
	HQueueWait    = obs.HQueueWait
	HRequestRTT   = obs.HRequestRTT
	HTransferWait = obs.HTransferWait
	HApply        = obs.HApply
	HReleaseTotal = obs.HReleaseTotal
	HDisseminate  = obs.HDisseminate
	HDaemonPoll   = obs.HDaemonPoll
	HGrantDeliver = obs.HGrantDeliver
)

// NewSession starts an empty guarantee-tracking session.
func NewSession() *Session { return session.NewSession() }

// LastWriterWins is the default conflict resolver.
func LastWriterWins(local, incoming SessionWrite) []byte {
	return session.LastWriterWins(local, incoming)
}

// HomeSite is the site ID of the home site.
const HomeSite = wire.HomeSite

// Transfer modes (the paper's two prototypes plus the adaptive policy).
const (
	// ModeMNet moves replica data over Mocha's network library alone.
	ModeMNet = core.ModeMNet
	// ModeHybrid moves replica data over a TCP-style stream set up via
	// MNet control messages.
	ModeHybrid = core.ModeHybrid
	// ModeAdaptive chooses per transfer by size.
	ModeAdaptive = core.ModeAdaptive
)

// NewParams creates an empty Parameter/Result bag.
func NewParams() *Params { return runtime.NewParams() }

// NewRegistry creates an empty task registry.
func NewRegistry() *Registry { return runtime.NewRegistry() }

// AllPermissions grants a task every capability.
func AllPermissions() Permissions { return runtime.AllPermissions() }

// Ints creates int-array replica content.
func Ints(v []int32) *Content { return marshal.Ints(v) }

// Bytes creates byte-array replica content.
func Bytes(v []byte) *Content { return marshal.Bytes(v) }

// Floats creates double-array replica content.
func Floats(v []float64) *Content { return marshal.Floats(v) }

// Object creates complex-object replica content.
func Object(s Serializable) *Content { return marshal.Object(s) }

// NewStringValue builds a shareable string object.
func NewStringValue(s string) *StringValue { return marshal.NewStringValue(s) }

// LAN returns the paper's Fast Ethernet environment.
func LAN() Profile { return netsim.LANFastEthernet() }

// WAN returns the paper's 1997 six-mile Internet environment.
func WAN() Profile { return netsim.WANInternet97() }

// CableModem returns the home-service environment of the paper's
// conclusion.
func CableModem() Profile { return netsim.CableModem() }

// Perfect returns an idealized instantaneous network for tests.
func Perfect() Profile { return netsim.Perfect() }

// JDK1Cost returns the calibrated 1997 interpreted-JVM cost model.
func JDK1Cost() CostModel { return netsim.JDK1() }

// NativeCost returns the zero cost model (pure Go performance).
func NativeCost() CostModel { return netsim.Native() }

// Option configures a cluster or site.
type Option func(*options)

type options struct {
	profile     Profile
	cost        CostModel
	mode        TransferMode
	javaCodec   bool
	seed        int64
	key         []byte
	output      optWriter
	maxServers  int
	lease       time.Duration
	reqTimeout  time.Duration
	xferTimeout time.Duration
	leaseSweep  time.Duration
	scale       float64
	perms       *Permissions
	streamReuse bool
	fanout      int
	delta       bool
	tree        bool
	placement   bool
	resolver    Resolver
	history     core.HistorySink
	metrics     *obs.Registry
	noMetrics   bool
	storeDir    string
	storeLimit  int
}

// optWriter keeps io out of the options struct zero value.
type optWriter interface{ Write(p []byte) (int, error) }

func defaultOptions() options {
	return options{
		profile: netsim.LANFastEthernet(),
		cost:    netsim.Native(),
		mode:    core.ModeMNet,
		scale:   1,
	}
}

// WithEnvironment selects the network profile (default LAN).
func WithEnvironment(p Profile) Option { return func(o *options) { o.profile = p } }

// WithCostModel selects the execution-cost model (default native Go).
func WithCostModel(c CostModel) Option { return func(o *options) { o.cost = c } }

// WithTransferMode selects the replica transfer protocol (default MNet).
func WithTransferMode(m TransferMode) Option { return func(o *options) { o.mode = m } }

// WithJavaCodec uses the JDK 1.1-style byte-at-a-time marshaling codec
// instead of the fast custom codec.
func WithJavaCodec() Option { return func(o *options) { o.javaCodec = true } }

// WithSeed fixes the simulated network's randomness.
func WithSeed(seed int64) Option { return func(o *options) { o.seed = seed } }

// WithClusterKey enables HMAC authentication of all traffic; every site
// must share the key.
func WithClusterKey(key []byte) Option {
	return func(o *options) { o.key = append([]byte(nil), key...) }
}

// WithOutput directs remote printing and stack dumps (default: discard).
func WithOutput(w optWriter) Option { return func(o *options) { o.output = w } }

// WithMaxServers bounds concurrent remote tasks per site (default 4).
func WithMaxServers(n int) Option { return func(o *options) { o.maxServers = n } }

// WithLease sets the default lock lease for failure detection.
func WithLease(d time.Duration) Option { return func(o *options) { o.lease = d } }

// WithRequestTimeout bounds control-message operations.
func WithRequestTimeout(d time.Duration) Option { return func(o *options) { o.reqTimeout = d } }

// WithTransferTimeout bounds replica transfers.
func WithTransferTimeout(d time.Duration) Option { return func(o *options) { o.xferTimeout = d } }

// WithLeaseSweep sets how often expired leases are checked.
func WithLeaseSweep(d time.Duration) Option { return func(o *options) { o.leaseSweep = d } }

// WithTimeScale multiplies every simulated delay and modelled cost by f,
// letting tests run calibrated environments quickly (f < 1).
func WithTimeScale(f float64) Option { return func(o *options) { o.scale = f } }

// WithTaskPermissions sets the capability set granted to hosted tasks
// (default: all permissions).
func WithTaskPermissions(p Permissions) Option {
	return func(o *options) { o.perms = &p }
}

// WithStreamReuse caches hybrid-protocol connections per destination
// instead of paying connection setup and teardown on every transfer — the
// extension the paper's hybrid-protocol results point at.
func WithStreamReuse() Option { return func(o *options) { o.streamReuse = true } }

// WithDeltaTransfer enables delta-encoded replica transfer: releases and
// transfers ship only the byte ranges changed since the version the
// receiver already holds (chained through a bounded update log), falling
// back to the full copy whenever the chain is broken. Off by default —
// the paper's protocols always send the full marshaled replica.
func WithDeltaTransfer() Option { return func(o *options) { o.delta = true } }

// WithDisseminationFanout bounds how many replica push transfers run
// concurrently when a release disseminates a new version to several sites.
// The default (0) runs all pushes in parallel, overlapping their round
// trips; 1 reproduces the paper prototype's strictly sequential fan-out.
func WithDisseminationFanout(n int) Option { return func(o *options) { o.fanout = n } }

// WithDisseminationTree enables locality-aware release dissemination:
// sharing sites are clustered into RTT buckets, each bucket elects a
// scored relay, and a release pushes the new version once per bucket —
// the relay re-fans it over its local links — instead of once per
// sharer. Buckets degrade to direct pushes around failed or unhealthy
// relays. Off by default (the paper's flat fan-out).
func WithDisseminationTree() Option { return func(o *options) { o.tree = true } }

// WithHomePlacement replaces the fixed lock home of the paper's design
// with a partitioned, mobile lock namespace: lock records are spread over
// every site by a consistent-hash ring, each home migrates a lock toward
// the site that dominates its accesses, streams record deltas to its ring
// successor, and that standby promotes the records — leases, version
// floors, and dirty sets intact — if the home dies. Off by default (the
// paper's single fixed home).
func WithHomePlacement() Option { return func(o *options) { o.placement = true } }

// WithDurableStore backs every site's replica state with a log-structured
// file store rooted at dir (each site writes under its own subdirectory).
// Replica versions, payloads, and fencing tokens append to a segmented
// write-ahead log — delta-encoded records reusing the transfer encoding,
// crc32-framed, fsync-batched — and a site restarted on the same directory
// replays the log, re-installs its replicas at their persisted versions,
// and rejoins via the version-poll protocol instead of refetching
// everything. Off by default: the paper's replicas live in memory only and
// a crashed site returns empty.
func WithDurableStore(dir string) Option {
	return func(o *options) { o.storeDir = dir }
}

// WithStoreMemLimit caps the bytes of replica payloads the durable store
// keeps cached in memory; cold replicas above the cap are evicted (their
// bytes remain in the log) and transparently refaulted on next access.
// Zero (the default) means no cap. Only meaningful with WithDurableStore.
func WithStoreMemLimit(bytes int) Option {
	return func(o *options) { o.storeLimit = bytes }
}

// WithResolver sets the conflict resolver for the sites' session stores
// (default last-writer-wins). The resolver must be deterministic and
// order-insensitive or replicas may diverge.
func WithResolver(r Resolver) Option { return func(o *options) { o.resolver = r } }

// HistorySink receives protocol history events from every site. The
// standard sink is the lock-free recorder in internal/check, whose offline
// checker replays the recorded history against the entry-consistency
// invariants (see DESIGN.md §5).
type HistorySink = core.HistorySink

// NewMetrics builds a standalone observability registry, for callers that
// want to share one plane across several clusters or export it themselves.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// WithMetrics attaches a caller-provided observability registry instead of
// the cluster's default one. All sites of the cluster record into it.
func WithMetrics(m *Metrics) Option { return func(o *options) { o.metrics = m } }

// WithoutMetrics disables the observability plane entirely: no registry is
// allocated and every instrumentation point degrades to a nil-receiver
// no-op (the ablate-obs benchmark's baseline).
func WithoutMetrics() Option { return func(o *options) { o.noMetrics = true } }

// WithHistory attaches a history sink to every site in the cluster,
// turning the run into a checkable totally-ordered protocol history. Off
// by default: recording adds a replica digest per lock transition.
func WithHistory(sink HistorySink) Option { return func(o *options) { o.history = sink } }

// codec builds the configured marshal codec.
func (o options) codec() marshal.Codec {
	cost := o.cost.Scaled(o.scale)
	if o.javaCodec {
		return marshal.NewJavaStyle(cost)
	}
	return marshal.NewFast(cost)
}
