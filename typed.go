package mocha

import (
	"mocha/internal/marshal"
)

// TypedReplica is the runtime equivalent of a MochaGen-generated Replica
// subclass: it shares an arbitrary Go value T the way StringReplica shares
// a java.lang.String, (re)serializing the whole value on every transfer.
// For hot paths, cmd/mochagen generates explicit marshaling code instead —
// the paper's "more optimized code when apriori knowledge regarding the
// use of objects is available".
//
// Access Get/Set/Update only while holding the associated ReplicaLock,
// exactly as with primitive replicas.
type TypedReplica[T any] struct {
	replica *Replica
	value   *marshal.GobValue[T]
}

// NewTypedReplica creates a shared complex object with initial data — the
// generated subclass's creating constructor.
func NewTypedReplica[T any](m *Mocha, name string, initial T, copies int) (*TypedReplica[T], error) {
	v := marshal.NewGobValue(initial)
	r, err := m.CreateReplica(name, marshal.Object(v), copies)
	if err != nil {
		return nil, err
	}
	return &TypedReplica[T]{replica: r, value: v}, nil
}

// AttachTypedReplica obtains a copy of an existing shared complex object —
// the generated subclass's attaching constructor.
func AttachTypedReplica[T any](m *Mocha, name string) (*TypedReplica[T], error) {
	var zero T
	v := marshal.NewGobValue(zero)
	r, err := m.AttachReplica(name, marshal.Object(v))
	if err != nil {
		return nil, err
	}
	return &TypedReplica[T]{replica: r, value: v}, nil
}

// Replica returns the underlying replica for ReplicaLock.Associate.
func (t *TypedReplica[T]) Replica() *Replica { return t.replica }

// Get returns the current value.
func (t *TypedReplica[T]) Get() T { return t.value.Get() }

// Set replaces the value; it propagates at the next unlock.
func (t *TypedReplica[T]) Set(v T) { t.value.Set(v) }

// Update applies a mutation atomically.
func (t *TypedReplica[T]) Update(f func(*T)) { t.value.Update(f) }
