package mocha_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"mocha"
	"mocha/internal/check"
)

// TestRealTransportSmoke runs a short two-site workload over real loopback
// sockets — once with replica data on UDP via MNet, once with the hybrid
// TCP stream protocol — with the history checker attached as an oracle.
// This is the one place the entry-consistency invariants are exercised
// against the operating system's actual network stack rather than netsim.
func TestRealTransportSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket smoke test skipped in -short mode")
	}
	for _, tc := range []struct {
		name string
		mode mocha.TransferMode
	}{
		{"udp-mnet", mocha.ModeMNet},
		{"tcp-hybrid", mocha.ModeHybrid},
	} {
		t.Run(tc.name, func(t *testing.T) { runRealTransportSmoke(t, tc.mode) })
	}
}

func runRealTransportSmoke(t *testing.T, mode mocha.TransferMode) {
	rec := check.NewRecorder(0, nil)

	var sites []*mocha.Site
	var err error
	for attempt := 0; attempt < 3 && len(sites) != 2; attempt++ {
		ports := freePorts(t, 2)
		directory := map[mocha.SiteID]string{
			1: fmt.Sprintf("127.0.0.1:%d", ports[0]),
			2: fmt.Sprintf("127.0.0.1:%d", ports[1]),
		}
		sites = sites[:0]
		for _, id := range []mocha.SiteID{1, 2} {
			s, joinErr := mocha.JoinClusterEntries(directory, id, nil,
				mocha.WithTransferMode(mode),
				mocha.WithHistory(rec),
			)
			if joinErr != nil {
				err = joinErr
				for _, s := range sites {
					_ = s.Close()
				}
				sites = sites[:0]
				break
			}
			sites = append(sites, s)
		}
	}
	if len(sites) != 2 {
		t.Fatalf("could not bind cluster: %v", err)
	}
	closed := false
	closeSites := func() {
		if closed {
			return
		}
		closed = true
		for _, s := range sites {
			_ = s.Close()
		}
	}
	defer closeSites()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	bag := sites[0].Bag("main")
	r, err := bag.CreateReplica("smoke", mocha.Ints([]int32{0}), 2)
	if err != nil {
		t.Fatal(err)
	}
	rl := bag.ReplicaLock(1)
	if err := rl.Associate(ctx, r); err != nil {
		t.Fatal(err)
	}
	worker := sites[1].Bag("worker")
	r2, err := worker.AttachReplica("smoke", mocha.Ints(nil))
	if err != nil {
		t.Fatal(err)
	}
	rl2 := worker.ReplicaLock(1)
	if err := rl2.Associate(ctx, r2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)

	// Ping-pong the lock between the sites; each hold increments the
	// shared counter under entry consistency.
	const rounds = 3
	for i := 0; i < rounds; i++ {
		if err := rl.Lock(ctx); err != nil {
			t.Fatalf("site 1 round %d: %v", i, err)
		}
		r.Content().IntsData()[0]++
		if err := rl.Unlock(ctx); err != nil {
			t.Fatal(err)
		}
		if err := rl2.Lock(ctx); err != nil {
			t.Fatalf("site 2 round %d: %v", i, err)
		}
		r2.Content().IntsData()[0]++
		if err := rl2.Unlock(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := rl.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	if got := r.Content().IntsData()[0]; got != 2*rounds {
		t.Fatalf("counter = %d after %d increments", got, 2*rounds)
	}
	if err := rl.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	closeSites()
	if v := check.Check(rec.Events()); v != nil {
		t.Errorf("real-transport history violates entry consistency: %v", v)
	}
	if rec.Dropped() > 0 {
		t.Errorf("recorder dropped %d events", rec.Dropped())
	}
}
