package mocha_test

import (
	"context"
	"fmt"
	"time"

	"mocha"
)

// ExampleNewSimCluster spawns the paper's Myhello task (Figures 1-2) on a
// simulated three-site cluster.
func ExampleNewSimCluster() {
	cluster, err := mocha.NewSimCluster(3, mocha.WithEnvironment(mocha.Perfect()))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer func() { _ = cluster.Close() }()

	cluster.MustRegister("Myhello", func() mocha.Task {
		return mocha.TaskFunc(func(m *mocha.Mocha) {
			start, _ := m.Parameter.GetDouble("start")
			m.Result.AddDouble("returnvalue", start+1)
			m.ReturnResults()
		})
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	bag := cluster.Home().Bag("main")
	p := mocha.NewParams()
	p.AddDouble("start", 41)
	rh, err := bag.Spawn(ctx, 2, "Myhello", p)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := rh.Wait(ctx)
	if err != nil {
		fmt.Println(err)
		return
	}
	v, _ := res.GetDouble("returnvalue")
	fmt.Println(v)
	// Output: 42
}

// ExampleReplicaLock shares an index replica between two sites with entry
// consistency (the Figure 3 pattern).
func ExampleReplicaLock() {
	cluster, err := mocha.NewSimCluster(2, mocha.WithEnvironment(mocha.Perfect()))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer func() { _ = cluster.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	home := cluster.Home().Bag("home")
	idx, err := home.CreateReplica("flatwareIndex", mocha.Ints([]int32{0}), 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	homeLock := home.ReplicaLock(1)
	if err := homeLock.Associate(ctx, idx); err != nil {
		fmt.Println(err)
		return
	}

	remote := cluster.Site(2).Bag("associate")
	ridx, err := remote.AttachReplica("flatwareIndex", mocha.Ints(nil))
	if err != nil {
		fmt.Println(err)
		return
	}
	remoteLock := remote.ReplicaLock(1)
	if err := remoteLock.Associate(ctx, ridx); err != nil {
		fmt.Println(err)
		return
	}

	// Home updates under the lock.
	if err := homeLock.Lock(ctx); err != nil {
		fmt.Println(err)
		return
	}
	idx.Content().IntsData()[0] = 7
	if err := homeLock.Unlock(ctx); err != nil {
		fmt.Println(err)
		return
	}

	// The remote site acquires: its replica is now consistent.
	if err := remoteLock.Lock(ctx); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(ridx.Content().IntsData()[0])
	_ = remoteLock.Unlock(ctx)
	// Output: 7
}

// ExampleSession shows the optimistic, lock-free sharing mode with
// read-your-writes across replicas.
func ExampleSession() {
	cluster, err := mocha.NewSimCluster(2, mocha.WithEnvironment(mocha.Perfect()))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer func() { _ = cluster.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	st1, err := cluster.Site(1).Sessions()
	if err != nil {
		fmt.Println(err)
		return
	}
	st2, err := cluster.Site(2).Sessions()
	if err != nil {
		fmt.Println(err)
		return
	}

	se := mocha.NewSession()
	if err := se.Write(ctx, st1, "brief", []byte("blue palette")); err != nil {
		fmt.Println(err)
		return
	}
	// Reading at the other replica waits until the write has propagated.
	data, err := se.Read(ctx, st2, "brief")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(string(data))
	// Output: blue palette
}
