package mocha_test

import (
	"testing"
	"time"

	"mocha"
	"mocha/internal/check"
	"mocha/internal/obs"
)

// TestMetricsDeadPeerScenario exercises the observability plane end to
// end through the public API: a site takes a lock and is fail-stopped,
// the home breaks the lease and recovers, and afterwards the cluster's
// default metrics registry must expose the whole story — nonzero
// lease-break and retransmit counters, per-phase latency histograms, and
// operation spans tagged with (site, lock, version).
func TestMetricsDeadPeerScenario(t *testing.T) {
	rec := check.NewRecorder(0, nil)
	cluster, err := mocha.NewSimCluster(3,
		mocha.WithEnvironment(mocha.Perfect()),
		mocha.WithLease(200*time.Millisecond),
		mocha.WithLeaseSweep(50*time.Millisecond),
		mocha.WithRequestTimeout(500*time.Millisecond),
		mocha.WithHistory(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	ctx := testCtx(t)

	m := cluster.Metrics()
	if m == nil {
		t.Fatal("sim cluster should carry a default metrics registry")
	}

	bagHome := cluster.Home().Bag("home")
	r, err := bagHome.CreateReplica("value", mocha.Ints([]int32{7}), 3)
	if err != nil {
		t.Fatal(err)
	}
	rlHome := bagHome.ReplicaLock(4)
	if err := rlHome.Associate(ctx, r); err != nil {
		t.Fatal(err)
	}

	bag2 := cluster.Site(2).Bag("w2")
	r2, err := bag2.AttachReplica("value", mocha.Ints(nil))
	if err != nil {
		t.Fatal(err)
	}
	rl2 := bag2.ReplicaLock(4)
	if err := rl2.Associate(ctx, r2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	// Site 2 takes the lock and dies holding it; the home's re-acquire
	// forces a lease break.
	if err := rl2.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	cluster.Kill(2)
	if err := rlHome.Lock(ctx); err != nil {
		t.Fatalf("lock never recovered after kill: %v", err)
	}
	r.Content().IntsData()[0] = 8
	if err := rlHome.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	// Let the retransmit sweep visit the unacked messages addressed to
	// the dead site (sim RTO is 50ms).
	time.Sleep(200 * time.Millisecond)

	snap := cluster.MetricsSnapshot()

	counters := []struct {
		name string
		c    obs.Counter
	}{
		{"lease breaks", obs.CLeaseBreaks},
		{"mnet retransmits", obs.CRetransmits},
		{"acquire requests", obs.CAcquireRequests},
		{"grants", obs.CGrants},
		{"releases", obs.CReleases},
	}
	for _, c := range counters {
		if m.CounterValue(c.c) == 0 {
			t.Errorf("%s counter is zero after dead-peer scenario", c.name)
		}
	}

	// Per-phase latency histograms: the acquire decomposition must have
	// fed at least the end-to-end and request-RTT phases.
	for _, h := range []obs.HistID{obs.HAcquireTotal, obs.HRequestRTT, obs.HReleaseTotal} {
		hs := snap.Hists[h.Name()]
		if hs.Count == 0 {
			t.Errorf("histogram %s is empty", h.Name())
		}
	}

	// Spans: an acquire span tagged with site and lock, decomposed into
	// named phases.
	var acquire *obs.SpanRecord
	for i := range snap.Spans {
		if snap.Spans[i].Op == "acquire" && snap.Spans[i].Lock == 4 {
			acquire = &snap.Spans[i]
		}
	}
	if acquire == nil {
		t.Fatal("no acquire span for lock 4 retained")
	}
	if acquire.Site == 0 {
		t.Error("acquire span missing site tag")
	}
	if len(acquire.Phases) == 0 {
		t.Error("acquire span has no phase decomposition")
	}
	if acquire.StartTick == 0 || acquire.EndTick <= acquire.StartTick {
		t.Errorf("acquire span ticks not monotone: start=%d end=%d",
			acquire.StartTick, acquire.EndTick)
	}
}

// TestMetricsHistorySharedClock pins the cross-referencing contract
// between the history checker and the metrics plane: both draw ticks
// from the cluster's single simulated clock, so every history-event tick
// and every span tick is a distinct draw from one monotone axis and the
// two streams can be interleaved by tick order.
func TestMetricsHistorySharedClock(t *testing.T) {
	rec := check.NewRecorder(0, nil)
	cluster, err := mocha.NewSimCluster(2,
		mocha.WithEnvironment(mocha.Perfect()),
		mocha.WithHistory(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	ctx := testCtx(t)

	bag := cluster.Home().Bag("b")
	r, err := bag.CreateReplica("v", mocha.Ints([]int32{0}), 2)
	if err != nil {
		t.Fatal(err)
	}
	rl := bag.ReplicaLock(9)
	if err := rl.Associate(ctx, r); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := rl.Lock(ctx); err != nil {
			t.Fatal(err)
		}
		r.Content().IntsData()[0]++
		if err := rl.Unlock(ctx); err != nil {
			t.Fatal(err)
		}
	}

	snap := cluster.MetricsSnapshot()
	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("history recorder captured nothing")
	}
	if len(snap.Spans) == 0 {
		t.Fatal("no spans retained")
	}

	// Every Tick() call advances the shared counter, so ticks must be
	// unique across both the history stream and the span stream — the
	// signature of a single clock source.
	seen := make(map[uint64]string)
	record := func(tick uint64, who string) {
		if tick == 0 {
			t.Fatalf("%s carries zero tick", who)
		}
		if prev, dup := seen[tick]; dup {
			t.Fatalf("tick %d drawn by both %s and %s: clocks are not shared", tick, prev, who)
		}
		seen[tick] = who
	}
	for _, ev := range events {
		record(ev.Tick, "history")
	}
	for _, sp := range snap.Spans {
		record(sp.StartTick, "span-start")
		record(sp.EndTick, "span-end")
	}
	// And the final snapshot tick bounds both streams.
	for tick := range seen {
		if tick > snap.Tick {
			t.Fatalf("tick %d exceeds snapshot tick %d", tick, snap.Tick)
		}
	}
}
